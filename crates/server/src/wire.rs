//! The length-prefixed binary protocol the server speaks.
//!
//! Every message — request and response alike — is one frame:
//!
//! ```text
//! request : 0xC7 ‖ opcode:u8 ‖ len:u32be ‖ body[len]
//! response: 0xC7 ‖ status:u8 ‖ len:u32be ‖ body[len]
//! ```
//!
//! The magic byte `0xC7` is deliberately outside ASCII so the listener
//! can tell a protocol client from a plaintext HTTP scrape (`GET …`) by
//! the first byte alone. Frame bodies are bounded by
//! [`MAX_BODY`]; a length prefix beyond the bound is rejected *before*
//! any body byte is read, so a hostile peer cannot make the server
//! buffer unboundedly.
//!
//! Opcode bodies (requests):
//!
//! | op | body | Ok response body |
//! |----|------|------------------|
//! | [`OpCode::Ping`] | arbitrary bytes | the same bytes |
//! | [`OpCode::PublicKey`] | empty | serialized server public key |
//! | [`OpCode::SessionHello`] | `Session::initiate` hello | 16-byte session id |
//! | [`OpCode::SessionFrame`] | sealed client→server frame | sealed server→client echo |
//! | [`OpCode::Encrypt`] | plaintext message | serialized ciphertext |
//! | [`OpCode::Decrypt`] | serialized ciphertext | plaintext message |
//! | [`OpCode::Encap`] | empty | 32-byte shared secret ‖ ciphertext |
//! | [`OpCode::Decap`] | serialized ciphertext | 32-byte shared secret |
//!
//! A [`Status::Rejected`] response body is `code:u8 ‖ utf-8 detail`;
//! code [`REJECT_RETRYABLE`] marks the ~1% KEM handshake failure the
//! client should simply retry. [`Status::Busy`] and
//! [`Status::ShuttingDown`] responses carry empty bodies and are always
//! followed by connection close — that pair is the whole backpressure
//! contract.

use std::io::{self, Read, Write};

/// First byte of every protocol frame (outside ASCII; see module docs).
pub const MAGIC: u8 = 0xC7;

/// Frame header length: magic + opcode/status + length prefix.
pub const HEADER_LEN: usize = 1 + 1 + 4;

/// Upper bound on a frame body. Large enough for any P1/P2 key,
/// ciphertext or sealed session frame with room to spare; small enough
/// that a hostile length prefix cannot balloon server memory.
pub const MAX_BODY: usize = 1 << 20;

/// `Rejected` body code: the request failed in a way the client should
/// retry (KEM handshake decryption failure).
pub const REJECT_RETRYABLE: u8 = 0x01;

/// `Rejected` body code: the request was well-formed but the operation
/// failed permanently (bad ciphertext bytes, wrong message length, …).
pub const REJECT_PERMANENT: u8 = 0x02;

/// Request opcodes. See the module docs for each body shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// Echo: body is returned verbatim. Liveness/latency probe.
    Ping = 0x01,
    /// Fetch the server's serialized public key.
    PublicKey = 0x02,
    /// Deliver a `Session::initiate` hello; the server accepts and
    /// binds the session to this connection.
    SessionHello = 0x03,
    /// Deliver one sealed client→server frame on the bound session;
    /// the payload is echoed back sealed in the server→client direction.
    SessionFrame = 0x04,
    /// Encrypt the body under the server's public key.
    Encrypt = 0x05,
    /// Decrypt a serialized ciphertext with the server's secret key.
    Decrypt = 0x06,
    /// KEM-encapsulate to the server's own public key.
    Encap = 0x07,
    /// KEM-decapsulate a serialized ciphertext.
    Decap = 0x08,
}

/// Every opcode, in wire order (for metrics registration and tests).
pub const ALL_OPS: [OpCode; 8] = [
    OpCode::Ping,
    OpCode::PublicKey,
    OpCode::SessionHello,
    OpCode::SessionFrame,
    OpCode::Encrypt,
    OpCode::Decrypt,
    OpCode::Encap,
    OpCode::Decap,
];

impl OpCode {
    /// Parses a wire opcode byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        ALL_OPS.into_iter().find(|op| *op as u8 == b)
    }

    /// Stable label for the `op` dimension of server metrics.
    pub fn label(self) -> &'static str {
        match self {
            OpCode::Ping => "ping",
            OpCode::PublicKey => "public_key",
            OpCode::SessionHello => "session_hello",
            OpCode::SessionFrame => "session_frame",
            OpCode::Encrypt => "encrypt",
            OpCode::Decrypt => "decrypt",
            OpCode::Encap => "encap",
            OpCode::Decap => "decap",
        }
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The operation succeeded; the body is the result.
    Ok = 0x00,
    /// Load shed: a submission queue (or the connection limit) was
    /// full. The connection is closed after this frame; retry against
    /// a less loaded instant. The body is empty.
    Busy = 0x01,
    /// The request frame itself was malformed (bad magic, unknown
    /// opcode, oversized length). The connection is closed.
    BadRequest = 0x02,
    /// The request was well-formed but the operation failed; body is
    /// `code ‖ detail` and the connection stays open.
    Rejected = 0x03,
    /// The server is draining for shutdown; connection closes.
    ShuttingDown = 0x04,
}

impl Status {
    /// Parses a wire status byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        [
            Status::Ok,
            Status::Busy,
            Status::BadRequest,
            Status::Rejected,
            Status::ShuttingDown,
        ]
        .into_iter()
        .find(|s| *s as u8 == b)
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The operation to perform.
    pub op: OpCode,
    /// The operation's argument bytes.
    pub body: Vec<u8>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome class.
    pub status: Status,
    /// Result bytes (or `code ‖ detail` for [`Status::Rejected`]).
    pub body: Vec<u8>,
}

/// Structural defects a frame can have. Carried by
/// [`crate::ServerError::Protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The opcode byte names no known operation.
    BadOpcode(u8),
    /// The status byte names no known status.
    BadStatus(u8),
    /// The length prefix exceeds [`MAX_BODY`].
    TooLarge(u64),
    /// The input ended before the frame did.
    Truncated,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X}"),
            ProtocolError::BadOpcode(b) => write!(f, "unknown opcode 0x{b:02X}"),
            ProtocolError::BadStatus(b) => write!(f, "unknown status 0x{b:02X}"),
            ProtocolError::TooLarge(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_BODY}-byte bound"
                )
            }
            ProtocolError::Truncated => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Encodes a request frame.
pub fn encode_request(op: OpCode, body: &[u8]) -> Vec<u8> {
    encode(op as u8, body)
}

/// Encodes a response frame.
pub fn encode_response(status: Status, body: &[u8]) -> Vec<u8> {
    encode(status as u8, body)
}

fn encode(tag: u8, body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(MAGIC);
    out.push(tag);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates a 6-byte header, returning `(tag, body_len)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), ProtocolError> {
    if header[0] != MAGIC {
        return Err(ProtocolError::BadMagic(header[0]));
    }
    let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]) as u64;
    if len > MAX_BODY as u64 {
        return Err(ProtocolError::TooLarge(len));
    }
    Ok((header[1], len as usize))
}

/// Decodes one request frame off the front of `buf`, returning it and
/// the number of bytes consumed.
///
/// # Errors
///
/// Any [`ProtocolError`] structural defect; `buf` is never partially
/// consumed on error.
pub fn decode_request(buf: &[u8]) -> Result<(Request, usize), ProtocolError> {
    let (tag, body) = decode(buf)?;
    let op = OpCode::from_u8(tag).ok_or(ProtocolError::BadOpcode(tag))?;
    Ok((
        Request {
            op,
            body: body.to_vec(),
        },
        HEADER_LEN + body.len(),
    ))
}

/// Decodes one response frame off the front of `buf`, returning it and
/// the number of bytes consumed.
///
/// # Errors
///
/// Any [`ProtocolError`] structural defect.
pub fn decode_response(buf: &[u8]) -> Result<(Response, usize), ProtocolError> {
    let (tag, body) = decode(buf)?;
    let status = Status::from_u8(tag).ok_or(ProtocolError::BadStatus(tag))?;
    Ok((
        Response {
            status,
            body: body.to_vec(),
        },
        HEADER_LEN + body.len(),
    ))
}

fn decode(buf: &[u8]) -> Result<(u8, &[u8]), ProtocolError> {
    let header: &[u8; HEADER_LEN] = buf
        .get(..HEADER_LEN)
        .and_then(|h| h.try_into().ok())
        .ok_or(ProtocolError::Truncated)?;
    let (tag, len) = parse_header(header)?;
    let body = buf
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(ProtocolError::Truncated)?;
    Ok((tag, body))
}

/// How a blocking frame read ended without producing a frame.
#[derive(Debug)]
pub enum ReadOutcome<T> {
    /// A whole frame arrived.
    Frame(T),
    /// The peer closed the stream cleanly before any frame byte.
    Eof,
    /// The read timed out before any frame byte (idle connection).
    TimedOut,
    /// The frame was structurally invalid.
    Protocol(ProtocolError),
    /// The transport failed.
    Io(io::Error),
}

/// Reads one request frame from a blocking stream.
///
/// A timeout or clean close *before the first byte* is reported as
/// [`ReadOutcome::TimedOut`] / [`ReadOutcome::Eof`] so callers can
/// distinguish an idle connection from a truncated frame; either of
/// them *mid-frame* is a [`ProtocolError::Truncated`].
pub fn read_request(r: &mut impl Read) -> ReadOutcome<Request> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header) {
        Ok(0) => return ReadOutcome::Eof,
        Ok(n) if n < HEADER_LEN => return ReadOutcome::Protocol(ProtocolError::Truncated),
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return ReadOutcome::TimedOut,
        Err(e) => return ReadOutcome::Io(e),
    }
    finish_request_read(r, header)
}

/// Continues [`read_request`] after the caller already consumed (and
/// verified) the magic byte — the server's HTTP-vs-protocol sniff path.
pub fn read_request_after_magic(r: &mut impl Read) -> ReadOutcome<Request> {
    let mut rest = [0u8; HEADER_LEN - 1];
    if let Err(e) = r.read_exact(&mut rest) {
        return if e.kind() == io::ErrorKind::UnexpectedEof || is_timeout(&e) {
            ReadOutcome::Protocol(ProtocolError::Truncated)
        } else {
            ReadOutcome::Io(e)
        };
    }
    let mut header = [0u8; HEADER_LEN];
    if let Some((first, tail)) = header.split_first_mut() {
        *first = MAGIC;
        tail.copy_from_slice(&rest);
    }
    finish_request_read(r, header)
}

fn finish_request_read(r: &mut impl Read, header: [u8; HEADER_LEN]) -> ReadOutcome<Request> {
    let (tag, len) = match parse_header(&header) {
        Ok(v) => v,
        Err(e) => return ReadOutcome::Protocol(e),
    };
    let op = match OpCode::from_u8(tag) {
        Some(op) => op,
        None => return ReadOutcome::Protocol(ProtocolError::BadOpcode(tag)),
    };
    let mut body = vec![0u8; len];
    match r.read_exact(&mut body) {
        Ok(()) => ReadOutcome::Frame(Request { op, body }),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof || is_timeout(&e) => {
            ReadOutcome::Protocol(ProtocolError::Truncated)
        }
        Err(e) => ReadOutcome::Io(e),
    }
}

/// Reads one response frame from a blocking stream.
///
/// # Errors
///
/// [`ProtocolError::Truncated`] (wrapped in io) on early close; any
/// transport error verbatim.
pub fn read_response(r: &mut impl Read) -> Result<Response, crate::ServerError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header).map_err(truncated_on_eof)?;
    let (tag, len) = parse_header(&header)?;
    let status = Status::from_u8(tag).ok_or(ProtocolError::BadStatus(tag))?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(truncated_on_eof)?;
    Ok(Response { status, body })
}

fn truncated_on_eof(e: io::Error) -> crate::ServerError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        crate::ServerError::Protocol(ProtocolError::Truncated)
    } else {
        crate::ServerError::Io(e)
    }
}

/// Writes a whole frame (and flushes).
///
/// # Errors
///
/// Any transport error.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes unless the very first read returns
/// EOF (clean close), in which case 0 is returned.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        // panic-allow(the loop guard keeps `filled` strictly below `buf.len()`)
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Whether an io error is a blocking-read timeout (platform-dependent
/// kind: `WouldBlock` on unix, `TimedOut` on windows).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_bytes() {
        let wire = encode_request(OpCode::Encrypt, b"payload");
        let (req, used) = decode_request(&wire).unwrap();
        assert_eq!(req.op, OpCode::Encrypt);
        assert_eq!(req.body, b"payload");
        assert_eq!(used, wire.len());
    }

    #[test]
    fn response_round_trips_through_bytes() {
        let wire = encode_response(Status::Rejected, &[REJECT_PERMANENT, b'x']);
        let (resp, used) = decode_response(&wire).unwrap();
        assert_eq!(resp.status, Status::Rejected);
        assert_eq!(resp.body, &[REJECT_PERMANENT, b'x']);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_the_body() {
        let mut wire = encode_request(OpCode::Ping, b"");
        wire[2..6].copy_from_slice(&((MAX_BODY as u32) + 1).to_be_bytes());
        assert!(matches!(
            decode_request(&wire),
            Err(ProtocolError::TooLarge(_))
        ));
    }

    #[test]
    fn magic_is_outside_ascii() {
        // The HTTP-vs-protocol sniff depends on this.
        assert!(!MAGIC.is_ascii());
    }

    #[test]
    fn every_opcode_survives_the_byte_round_trip() {
        for op in ALL_OPS {
            assert_eq!(OpCode::from_u8(op as u8), Some(op));
        }
        assert_eq!(OpCode::from_u8(0x00), None);
        assert_eq!(OpCode::from_u8(0xFF), None);
    }
}

//! Golden test for the shared-port HTTP surface: `/healthz`, 404s, and
//! a `/metrics` scrape whose body must be byte-identical to
//! [`rlwe_obs::render`].
//!
//! One sequential test function on purpose: the registry is process
//! global, so concurrent tests in this binary would race the golden
//! byte comparison. Separate test *files* are separate processes and
//! stay isolated.

use rlwe_server::http::METRICS_CONTENT_TYPE;
use rlwe_server::{http_get, serve, ServerConfig};
use std::time::{Duration, Instant};

/// Polls until `cond` holds or a generous deadline passes.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn http_surface_serves_health_notfound_and_a_golden_metrics_body() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 2,
        seed: [9u8; 32],
        ..ServerConfig::default()
    };
    let handle = serve(config).unwrap();
    let addr = handle.local_addr();

    // --- /healthz ---
    let health = http_get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    // --- unknown path ---
    let missing = http_get(addr, "/nope").unwrap();
    assert_eq!(missing.status, 404);

    // --- non-GET ---
    // http_get only speaks GET; drive a POST by hand.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.0 405 "), "got: {text}");
    }

    // Let the prior connections' close accounting settle so the gauge
    // values in the scrape below are quiescent.
    let metrics = handle.metrics();
    wait_for("prior connections to close", || {
        metrics.active_connections() == 0
    });

    // --- /metrics: golden byte comparison ---
    // The scrape connection releases its own accounting before
    // rendering, so on a quiet server the served body must be
    // byte-identical to a render() taken after the scrape.
    let scrape = http_get(addr, "/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    assert_eq!(
        scrape.header("Content-Type"),
        Some(METRICS_CONTENT_TYPE),
        "Prometheus text exposition content type"
    );
    assert_eq!(
        scrape.header("Content-Length"),
        Some(scrape.body.len().to_string().as_str())
    );
    wait_for("scrape connection to close", || {
        metrics.active_connections() == 0
    });
    let local = rlwe_obs::render();
    assert_eq!(
        String::from_utf8_lossy(&scrape.body),
        local,
        "served /metrics body drifted from rlwe_obs::render()"
    );

    // The body carries the server's own series, engine series, and the
    // scrapes we just made.
    let body = String::from_utf8_lossy(&scrape.body);
    for series in [
        "rlwe_server_connections_accepted_total",
        "rlwe_server_connections_active",
        "rlwe_server_queue_depth",
        "rlwe_server_http_requests_total",
    ] {
        assert!(body.contains(series), "missing series {series}");
    }
    assert!(
        body.contains(r#"rlwe_server_http_requests_total{path="/healthz"} 1"#),
        "healthz scrape not counted: {body}"
    );
    // The path counter increments before the method check, so the 405
    // POST above also counted toward /metrics: POST + this GET = 2.
    assert!(
        body.contains(r#"rlwe_server_http_requests_total{path="/metrics"} 2"#),
        "metrics requests not counted"
    );
    assert!(
        body.contains(r#"rlwe_server_http_requests_total{path="other"} 1"#),
        "404 path not counted as other"
    );

    handle.shutdown();
}

//! End-to-end loopback tests against a real TCP server: concurrent
//! authenticated clients, deterministic load shedding, graceful-
//! shutdown draining, and malformed-frame robustness.
//!
//! Metrics note: the `rlwe-obs` registry is process global, so counter
//! cells are shared by every server these tests start. All numeric
//! assertions are therefore *deltas* from a baseline taken at test
//! start (only one test sheds, only one evicts, and `>=` bounds absorb
//! the rest); queue depths come from `ServerHandle::queue_depth`, which
//! reads the per-server queue directly.

use rlwe_core::drbg::HashDrbg;
use rlwe_core::PublicKey;
use rlwe_engine::{Session, StreamReceiver, StreamSender};
use rlwe_server::wire::{self, OpCode, Status, REJECT_PERMANENT, REJECT_RETRYABLE};
use rlwe_server::{http_get, serve, Client, ServerConfig, ServerHandle};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        seed: [42u8; 32],
        ..ServerConfig::default()
    }
}

/// Polls until `cond` holds or a generous deadline passes.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ------------------------------------------------------------------------
// Acceptance criterion: ≥ 32 concurrent clients, handshake + ≥ 10 sealed
// frames each, zero failures, with concurrent /metrics scrapes returning
// the live registry.
// ------------------------------------------------------------------------

#[test]
fn thirty_two_concurrent_clients_with_live_metrics_scrapes() {
    const CLIENTS: usize = 32;
    const FRAMES: usize = 10;

    let mut config = base_config();
    config.workers = 4;
    config.queue_shards = 2;
    config.queue_capacity = 64;
    let handle = serve(config).unwrap();
    let addr = handle.local_addr();
    let accepted0 = handle.metrics().accepted_total();
    let frames0 = handle.metrics().requests_total(OpCode::SessionFrame);

    // Scraper thread: hammer /metrics while the fleet runs.
    let done = Arc::new(AtomicBool::new(false));
    let scraper = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || -> Result<usize, String> {
            let mut scrapes = 0usize;
            while !done.load(Ordering::Relaxed) {
                let resp = http_get(addr, "/metrics").map_err(|e| e.to_string())?;
                if resp.status != 200 {
                    return Err(format!("scrape status {}", resp.status));
                }
                let body = String::from_utf8_lossy(&resp.body);
                if !body.contains("rlwe_server_connections_accepted_total") {
                    return Err("scrape body missing rlwe_server_ series".into());
                }
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(scrapes)
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || -> Result<(), String> {
                let fail = |stage: &'static str| move |e| format!("client {i} {stage}: {e}");
                let mut client = Client::connect(addr).map_err(fail("connect"))?;
                let seed = [i as u8 + 1; 32];
                client.handshake(&seed, 16).map_err(fail("handshake"))?;
                for j in 0..FRAMES {
                    let payload = format!("client {i} frame {j}");
                    let echo = client
                        .exchange(payload.as_bytes())
                        .map_err(fail("exchange"))?;
                    if echo != payload.as_bytes() {
                        return Err(format!("client {i}: echo mismatch on frame {j}"));
                    }
                }
                // A quarter of the fleet also runs the raw KEM ops so
                // every opcode sees concurrent traffic.
                if i % 4 == 0 {
                    let (ss, ct) = client.encap().map_err(fail("encap"))?;
                    let ss2 = client.decap(&ct).map_err(fail("decap"))?;
                    if ss != ss2 {
                        return Err(format!("client {i}: encap/decap secret mismatch"));
                    }
                    let mb = client
                        .public_key()
                        .map_err(fail("public_key"))?
                        .params()
                        .message_bytes();
                    let msg = vec![i as u8; mb];
                    let ct = client.encrypt(&msg).map_err(fail("encrypt"))?;
                    let back = client.decrypt(&ct).map_err(fail("decrypt"))?;
                    if back != msg {
                        return Err(format!("client {i}: encrypt/decrypt mismatch"));
                    }
                }
                Ok(())
            })
        })
        .collect();

    let failures: Vec<String> = clients
        .into_iter()
        .filter_map(|t| t.join().expect("client thread panicked").err())
        .collect();
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper
        .join()
        .expect("scraper thread panicked")
        .expect("metrics scrape failed mid-load");

    assert!(failures.is_empty(), "client failures: {failures:?}");
    assert!(scrapes >= 1, "no /metrics scrape completed during the run");
    assert!(
        handle.metrics().accepted_total() - accepted0 >= (CLIENTS + scrapes) as u64,
        "accepted counter lost connections"
    );
    assert!(
        handle.metrics().requests_total(OpCode::SessionFrame) - frames0
            >= (CLIENTS * FRAMES) as u64,
        "session-frame counter lost requests"
    );

    // A final scrape shows the per-op series the fleet just exercised.
    let body = String::from_utf8_lossy(&http_get(addr, "/metrics").unwrap().body).into_owned();
    for needle in [
        r#"rlwe_server_requests_total{op="session_frame"}"#,
        r#"rlwe_server_requests_total{op="session_hello"}"#,
        r#"rlwe_server_request_ns"#,
        r#"rlwe_server_queue_depth{shard="0"}"#,
        r#"rlwe_server_queue_depth{shard="1"}"#,
    ] {
        assert!(body.contains(needle), "missing {needle} in:\n{body}");
    }

    handle.shutdown();
}

// ------------------------------------------------------------------------
// Acceptance criterion: with capacity 1, excess connections get a typed
// Busy frame, rlwe_server_shed_total counts them, and the queue stays
// bounded.
// ------------------------------------------------------------------------

#[test]
fn full_queue_sheds_deterministically_with_a_typed_busy_frame() {
    let mut config = base_config();
    config.workers = 1;
    config.queue_shards = 1;
    config.queue_capacity = 1;
    config.idle_timeout = Duration::from_secs(60);
    let handle = serve(config).unwrap();
    let addr = handle.local_addr();
    let shed0 = handle.metrics().shed_total();

    // A: occupy the single worker. The ping response proves a worker
    // popped this connection and is now parked in its serve loop.
    let mut a = Client::connect(addr).unwrap();
    a.ping(b"occupy").unwrap();
    assert_eq!(handle.queue_depth(0), 0);

    // B: fills the single queue slot (nobody left to pop it).
    let b = TcpStream::connect(addr).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    wait_for("B to be queued", || handle.queue_depth(0) == 1);

    // C: every shard is full — must be shed with Busy, counted, closed.
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let resp = wire::read_response(&mut c).unwrap();
    assert_eq!(resp.status, Status::Busy, "excess connection not shed");
    assert!(resp.body.is_empty());
    assert_eq!(
        handle.metrics().shed_total() - shed0,
        1,
        "shed counter missed the Busy rejection"
    );
    // Bounded: shedding C never grew the queue past its capacity.
    assert_eq!(handle.queue_depth(0), 1);
    // ... and the Busy frame is followed by connection close.
    let mut rest = Vec::new();
    use std::io::Read;
    assert_eq!(c.read_to_end(&mut rest).unwrap(), 0, "C not closed");

    // Free the worker: B gets dequeued and served — backpressure queues
    // work, it does not drop it.
    drop(a);
    let mut b = b;
    wire::write_frame(&mut b, &wire::encode_request(OpCode::Ping, b"queued")).unwrap();
    let resp = wire::read_response(&mut b).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.body, b"queued");
    wait_for("queue to drain", || handle.queue_depth(0) == 0);

    handle.shutdown();
}

// ------------------------------------------------------------------------
// Acceptance criterion: graceful shutdown drains in-flight requests.
// ------------------------------------------------------------------------

/// A protocol session driven over a raw `TcpStream`, keeping the
/// sender/receiver halves in the test's hands (the `Client` wrapper
/// hides them, and these tests need to tamper with and split frames).
struct RawSession {
    stream: TcpStream,
    tx: StreamSender,
    rx: StreamReceiver,
}

fn raw_handshake(addr: SocketAddr, seed: &[u8; 32]) -> RawSession {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    wire::write_frame(&mut stream, &wire::encode_request(OpCode::PublicKey, &[])).unwrap();
    let resp = wire::read_response(&mut stream).unwrap();
    assert_eq!(resp.status, Status::Ok);
    let pk = PublicKey::from_bytes(&resp.body).unwrap();
    let set = pk.params().set().expect("server params name a set");
    let ctx = rlwe_engine::global_pool().get(set).unwrap();
    // Retry over the documented ~1% KEM decryption-failure rate.
    for attempt in 0..16u64 {
        let mut rng = HashDrbg::for_stream(seed, attempt);
        let (sess, hello) = Session::initiate(&ctx, &pk, &mut rng).unwrap();
        wire::write_frame(
            &mut stream,
            &wire::encode_request(OpCode::SessionHello, &hello),
        )
        .unwrap();
        let resp = wire::read_response(&mut stream).unwrap();
        match resp.status {
            Status::Ok => {
                return RawSession {
                    stream,
                    tx: sess.sender(),
                    rx: sess.receiver(),
                }
            }
            Status::Rejected if resp.body.first() == Some(&REJECT_RETRYABLE) => continue,
            status => panic!("handshake rejected: {status:?}"),
        }
    }
    panic!("sixteen consecutive KEM failures — astronomically unlikely");
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let mut config = base_config();
    config.workers = 1;
    config.queue_shards = 1;
    config.drain_timeout = Duration::from_millis(600);
    let handle = serve(config).unwrap();

    let mut sess = raw_handshake(handle.local_addr(), &[5u8; 32]);
    let payload = b"drain me";
    let sealed = sess.tx.seal(payload);
    // Request written but the response deliberately not read yet: it is
    // in flight when shutdown begins.
    wire::write_frame(
        &mut sess.stream,
        &wire::encode_request(OpCode::SessionFrame, &sealed),
    )
    .unwrap();

    // Blocks until the acceptor and all workers have joined — so once
    // it returns, whatever the worker did for us is already on the wire.
    handle.shutdown();

    let resp = wire::read_response(&mut sess.stream).unwrap();
    assert_eq!(
        resp.status,
        Status::Ok,
        "in-flight request was dropped by shutdown"
    );
    let (echo, _) = sess.rx.open(&resp.body).unwrap();
    assert_eq!(echo, payload);

    // After the drain grace the connection is closed, not left hanging.
    use std::io::Read;
    let mut rest = Vec::new();
    assert_eq!(sess.stream.read_to_end(&mut rest).unwrap(), 0);
}

// ------------------------------------------------------------------------
// Acceptance criterion: malformed, truncated and oversized frames are
// rejected without panicking and without advancing session state.
// ------------------------------------------------------------------------

#[test]
fn malformed_frames_are_rejected_without_state_damage() {
    let mut config = base_config();
    config.workers = 2;
    config.queue_shards = 1;
    let handle = serve(config).unwrap();
    let addr = handle.local_addr();

    tampered_session_frame_rejected_without_advancing_state(addr);
    unknown_opcode_answered_with_bad_request(addr, &handle);
    oversized_length_prefix_rejected_before_the_body(addr, &handle);
    truncated_frame_rejected(addr, &handle);
    non_http_garbage_answered_with_http_400(addr, &handle);

    // The server survived all of it: a fresh client still works.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping(b"alive").unwrap(), b"alive");
    handle.shutdown();
}

fn tampered_session_frame_rejected_without_advancing_state(addr: SocketAddr) {
    let mut sess = raw_handshake(addr, &[6u8; 32]);
    let payload = b"authentic";
    let sealed = sess.tx.seal(payload);

    // Flip one bit of the tag: must be rejected, connection stays open.
    let mut tampered = sealed.clone();
    *tampered.last_mut().unwrap() ^= 0x01;
    wire::write_frame(
        &mut sess.stream,
        &wire::encode_request(OpCode::SessionFrame, &tampered),
    )
    .unwrap();
    let resp = wire::read_response(&mut sess.stream).unwrap();
    assert_eq!(resp.status, Status::Rejected);
    assert_eq!(resp.body.first(), Some(&REJECT_PERMANENT));

    // The pristine frame (sequence 0) still opens on the same
    // connection: the rejected forgery advanced no server-side state.
    wire::write_frame(
        &mut sess.stream,
        &wire::encode_request(OpCode::SessionFrame, &sealed),
    )
    .unwrap();
    let resp = wire::read_response(&mut sess.stream).unwrap();
    assert_eq!(
        resp.status,
        Status::Ok,
        "session state was advanced by a rejected frame"
    );
    let (echo, _) = sess.rx.open(&resp.body).unwrap();
    assert_eq!(echo, payload);
}

fn unknown_opcode_answered_with_bad_request(addr: SocketAddr, handle: &ServerHandle) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let frame = [wire::MAGIC, 0xEE, 0, 0, 0, 0];
    wire::write_frame(&mut stream, &frame).unwrap();
    let resp = wire::read_response(&mut stream).unwrap();
    assert_eq!(resp.status, Status::BadRequest);
    assert_closed(stream);
    assert_still_alive(handle);
}

fn oversized_length_prefix_rejected_before_the_body(addr: SocketAddr, handle: &ServerHandle) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut frame = vec![wire::MAGIC, OpCode::Ping as u8];
    frame.extend_from_slice(&((wire::MAX_BODY as u32) + 1).to_be_bytes());
    // No body bytes follow — the response must arrive anyway, proving
    // the bound tripped on the header alone.
    wire::write_frame(&mut stream, &frame).unwrap();
    let resp = wire::read_response(&mut stream).unwrap();
    assert_eq!(resp.status, Status::BadRequest);
    assert_closed(stream);
    assert_still_alive(handle);
}

fn truncated_frame_rejected(addr: SocketAddr, handle: &ServerHandle) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Header promises 10 body bytes; deliver 3, then FIN.
    let mut frame = vec![wire::MAGIC, OpCode::Ping as u8, 0, 0, 0, 10];
    frame.extend_from_slice(b"abc");
    wire::write_frame(&mut stream, &frame).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let resp = wire::read_response(&mut stream).unwrap();
    assert_eq!(resp.status, Status::BadRequest);
    assert_closed(stream);
    assert_still_alive(handle);
}

fn non_http_garbage_answered_with_http_400(addr: SocketAddr, handle: &ServerHandle) {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // First byte is ASCII (not MAGIC), so this lands on the HTTP path
    // and must come back as a clean 400, not a hang or a panic.
    stream.write_all(b"XYZZY\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.0 400 "), "got: {text}");
    assert_still_alive(handle);
}

fn assert_closed(mut stream: TcpStream) {
    use std::io::Read;
    let mut rest = Vec::new();
    assert_eq!(
        stream.read_to_end(&mut rest).unwrap(),
        0,
        "connection left open after an unrecoverable protocol error"
    );
}

fn assert_still_alive(handle: &ServerHandle) {
    let mut probe = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(probe.ping(b"probe").unwrap(), b"probe");
}

//! `ServerConfig::from_lookup` coverage: defaults, every variable, and
//! typed errors for invalid values.
//!
//! Tests inject variable maps through `from_lookup` instead of mutating
//! the process environment — `std::env::set_var` is racy across the
//! threaded test harness, and `from_env` is a one-line delegation to
//! the same code path.

use rlwe_core::ParamSet;
use rlwe_server::config::env_vars;
use rlwe_server::{ConfigError, ServerConfig};
use std::collections::HashMap;
use std::time::Duration;

/// Builds a lookup closure over a literal variable map.
fn env(pairs: &[(&'static str, &str)]) -> impl Fn(&'static str) -> Option<String> {
    let map: HashMap<&'static str, String> =
        pairs.iter().map(|(k, v)| (*k, v.to_string())).collect();
    move |var| map.get(var).cloned()
}

fn err_for(pairs: &[(&'static str, &str)]) -> ConfigError {
    ServerConfig::from_lookup(env(pairs)).expect_err("config should be rejected")
}

#[test]
fn empty_environment_yields_the_documented_defaults() {
    let cfg = ServerConfig::from_lookup(|_| None).unwrap();
    assert_eq!(cfg.addr, "127.0.0.1:7681".parse().unwrap());
    assert_eq!(cfg.workers, rlwe_engine::default_workers());
    assert_eq!(cfg.queue_shards, cfg.workers.min(4));
    assert_eq!(cfg.queue_capacity, 64);
    assert_eq!(cfg.max_conns, 1024);
    assert_eq!(cfg.param_set, ParamSet::P1);
    assert_eq!(cfg.read_timeout, Duration::from_millis(5000));
    assert_eq!(cfg.write_timeout, Duration::from_millis(5000));
    assert_eq!(cfg.idle_timeout, Duration::from_millis(30_000));
    assert_eq!(cfg.drain_timeout, Duration::from_millis(500));
}

#[test]
fn every_variable_is_read() {
    let seed_hex = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff";
    let cfg = ServerConfig::from_lookup(env(&[
        (env_vars::ADDR, "0.0.0.0:9000"),
        (env_vars::WORKERS, "3"),
        (env_vars::QUEUE_SHARDS, "2"),
        (env_vars::QUEUE_CAPACITY, "5"),
        (env_vars::MAX_CONNS, "17"),
        (env_vars::PARAM_SET, "P2"),
        (env_vars::READ_TIMEOUT_MS, "111"),
        (env_vars::WRITE_TIMEOUT_MS, "222"),
        (env_vars::IDLE_TIMEOUT_MS, "333"),
        (env_vars::DRAIN_TIMEOUT_MS, "444"),
        (env_vars::SEED, seed_hex),
    ]))
    .unwrap();
    assert_eq!(cfg.addr, "0.0.0.0:9000".parse().unwrap());
    assert_eq!(cfg.workers, 3);
    assert_eq!(cfg.queue_shards, 2);
    assert_eq!(cfg.queue_capacity, 5);
    assert_eq!(cfg.max_conns, 17);
    assert_eq!(cfg.param_set, ParamSet::P2);
    assert_eq!(cfg.read_timeout, Duration::from_millis(111));
    assert_eq!(cfg.write_timeout, Duration::from_millis(222));
    assert_eq!(cfg.idle_timeout, Duration::from_millis(333));
    assert_eq!(cfg.drain_timeout, Duration::from_millis(444));
    assert_eq!(&cfg.seed[..4], &[0x00, 0x11, 0x22, 0x33]);
}

#[test]
fn worker_count_drives_the_shard_default_unless_overridden() {
    let cfg = ServerConfig::from_lookup(env(&[(env_vars::WORKERS, "2")])).unwrap();
    assert_eq!(cfg.queue_shards, 2);
    let cfg = ServerConfig::from_lookup(env(&[(env_vars::WORKERS, "16")])).unwrap();
    assert_eq!(cfg.queue_shards, 4);
    let cfg = ServerConfig::from_lookup(env(&[
        (env_vars::WORKERS, "16"),
        (env_vars::QUEUE_SHARDS, "8"),
    ]))
    .unwrap();
    assert_eq!(cfg.queue_shards, 8);
}

#[test]
fn param_set_accepts_both_cases() {
    for v in ["p1", "P1"] {
        let cfg = ServerConfig::from_lookup(env(&[(env_vars::PARAM_SET, v)])).unwrap();
        assert_eq!(cfg.param_set, ParamSet::P1);
    }
    for v in ["p2", "P2"] {
        let cfg = ServerConfig::from_lookup(env(&[(env_vars::PARAM_SET, v)])).unwrap();
        assert_eq!(cfg.param_set, ParamSet::P2);
    }
}

#[test]
fn invalid_values_are_typed_errors_naming_the_variable() {
    let cases: [(&'static str, &str); 10] = [
        (env_vars::ADDR, "not-an-address"),
        (env_vars::WORKERS, "0"),
        (env_vars::WORKERS, "three"),
        (env_vars::QUEUE_SHARDS, "0"),
        (env_vars::QUEUE_CAPACITY, "0"),
        (env_vars::MAX_CONNS, "-5"),
        (env_vars::PARAM_SET, "P3"),
        (env_vars::READ_TIMEOUT_MS, "0"),
        (env_vars::DRAIN_TIMEOUT_MS, "soon"),
        (env_vars::SEED, "deadbeef"),
    ];
    for (var, value) in cases {
        let err = err_for(&[(var, value)]);
        assert_eq!(err.var, var, "error blamed the wrong variable");
        assert_eq!(err.value, value, "error lost the offending value");
        // The Display form names the variable and the constraint — it
        // is the operator-facing diagnostic.
        let msg = err.to_string();
        assert!(msg.contains(var), "{msg:?} does not name {var}");
        assert!(!err.reason.is_empty());
    }
}

#[test]
fn validate_rejects_hand_built_zero_fields() {
    let cfg = ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    };
    assert_eq!(cfg.validate().unwrap_err().var, env_vars::WORKERS);

    let cfg = ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    };
    assert_eq!(cfg.validate().unwrap_err().var, env_vars::QUEUE_CAPACITY);

    let cfg = ServerConfig {
        idle_timeout: Duration::ZERO,
        ..ServerConfig::default()
    };
    assert_eq!(cfg.validate().unwrap_err().var, env_vars::IDLE_TIMEOUT_MS);
}

#[test]
fn from_env_reads_the_real_environment_without_panicking() {
    // The variables are unset in the test environment, so this is the
    // defaults path — the point is that the delegation compiles and
    // runs against the real process environment.
    let cfg = ServerConfig::from_env().unwrap();
    cfg.validate().unwrap();
}

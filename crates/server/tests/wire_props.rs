//! Property tests for the server's length-prefixed wire protocol:
//! encode/decode must round-trip every frame, and decoding arbitrary
//! bytes, truncations, and corrupted tags must reject — never panic,
//! never over-consume.
//!
//! Mirrors `crates/engine/tests/frames.rs`, one layer down: these are
//! the outer TCP frames that *carry* the engine's sealed session
//! frames.

use proptest::prelude::*;
use rlwe_server::wire::{
    self, decode_request, decode_response, encode_request, encode_response, ProtocolError, ALL_OPS,
    HEADER_LEN, MAGIC, MAX_BODY,
};
use rlwe_server::{OpCode, Status};

/// All wire statuses, mirroring `ALL_OPS` for the response tests.
const ALL_STATUSES: [Status; 5] = [
    Status::Ok,
    Status::Busy,
    Status::BadRequest,
    Status::Rejected,
    Status::ShuttingDown,
];

fn any_op() -> impl Strategy<Value = OpCode> {
    prop::sample::select(ALL_OPS.to_vec())
}

fn any_status() -> impl Strategy<Value = Status> {
    prop::sample::select(ALL_STATUSES.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip(
        op in any_op(),
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let bytes = encode_request(op, &body);
        prop_assert_eq!(bytes.len(), HEADER_LEN + body.len());
        prop_assert_eq!(bytes[0], MAGIC);
        let (req, used) = decode_request(&bytes).unwrap();
        prop_assert_eq!(req.op, op);
        prop_assert_eq!(req.body, body);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn responses_round_trip(
        status in any_status(),
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let bytes = encode_response(status, &body);
        let (resp, used) = decode_response(&bytes).unwrap();
        prop_assert_eq!(resp.status, status);
        prop_assert_eq!(resp.body, body);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics_and_never_over_consumes(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        if let Ok((req, used)) = decode_request(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert_eq!(used, HEADER_LEN + req.body.len());
            prop_assert_eq!(bytes[0], MAGIC);
        }
        if let Ok((resp, used)) = decode_response(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert_eq!(used, HEADER_LEN + resp.body.len());
        }
    }

    #[test]
    fn truncations_of_valid_requests_are_truncated_errors(
        op in any_op(),
        body in prop::collection::vec(any::<u8>(), 1..100),
        cut in any::<u16>(),
    ) {
        let bytes = encode_request(op, &body);
        let cut = (cut as usize) % bytes.len(); // strictly shorter
        let err = decode_request(&bytes[..cut]).unwrap_err();
        prop_assert_eq!(err, ProtocolError::Truncated);
    }

    #[test]
    fn bad_magic_is_rejected(
        first in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        // The shim has no prop_filter; remap the one excluded value.
        let first = if first == MAGIC { 0x00 } else { first };
        let mut bytes = encode_request(OpCode::Ping, &body);
        bytes[0] = first;
        prop_assert_eq!(
            decode_request(&bytes).unwrap_err(),
            ProtocolError::BadMagic(first)
        );
    }

    #[test]
    fn unknown_opcodes_and_statuses_are_rejected(tag in any::<u8>()) {
        let mut bytes = encode_request(OpCode::Ping, b"x");
        bytes[1] = tag;
        match decode_request(&bytes) {
            Ok((req, _)) => prop_assert_eq!(req.op as u8, tag),
            Err(e) => prop_assert_eq!(e, ProtocolError::BadOpcode(tag)),
        }
        match decode_response(&bytes) {
            Ok((resp, _)) => prop_assert_eq!(resp.status as u8, tag),
            Err(e) => prop_assert_eq!(e, ProtocolError::BadStatus(tag)),
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_reading_a_body(
        excess in 1u64..1_000_000,
    ) {
        let len = (MAX_BODY as u64 + excess).min(u32::MAX as u64) as u32;
        let mut bytes = encode_request(OpCode::Ping, &[]);
        bytes[2..6].copy_from_slice(&len.to_be_bytes());
        // No body bytes present at all — the bound must trip on the
        // header alone, which is exactly what protects the server from
        // hostile length prefixes.
        prop_assert_eq!(
            decode_request(&bytes).unwrap_err(),
            ProtocolError::TooLarge(len as u64)
        );
    }
}

/// Streaming reads must agree with the buffer decoders: a frame fed
/// through `read_request` byte-for-byte equals the `decode_request`
/// result.
#[test]
fn stream_and_buffer_decoders_agree() {
    for op in ALL_OPS {
        let body: Vec<u8> = (0..37u8).collect();
        let bytes = encode_request(op, &body);
        let mut cursor = std::io::Cursor::new(bytes.clone());
        match wire::read_request(&mut cursor) {
            wire::ReadOutcome::Frame(req) => {
                let (expect, _) = decode_request(&bytes).unwrap();
                assert_eq!(req, expect);
            }
            other => panic!("stream read failed for {op:?}: {other:?}"),
        }
    }
}

/// A cleanly closed stream before any byte is `Eof`, mid-header it is
/// `Truncated` — the distinction the idle-eviction loop relies on.
#[test]
fn stream_reader_distinguishes_eof_from_truncation() {
    let mut empty = std::io::Cursor::new(Vec::<u8>::new());
    assert!(matches!(
        wire::read_request(&mut empty),
        wire::ReadOutcome::Eof
    ));

    let bytes = encode_request(OpCode::Ping, b"abc");
    let mut partial = std::io::Cursor::new(bytes[..3].to_vec());
    assert!(matches!(
        wire::read_request(&mut partial),
        wire::ReadOutcome::Protocol(ProtocolError::Truncated)
    ));
}

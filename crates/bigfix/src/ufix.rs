//! The [`UFix`] unsigned fixed-point type.

use std::cmp::Ordering;
use std::fmt;

/// An unsigned binary fixed-point number.
///
/// The value is `Σ limbs[i] · 2^(32·(i − frac_limbs))` with limbs stored
/// little-endian: the first `frac_limbs` limbs hold the fraction, the rest
/// the integer part. All arithmetic truncates toward zero at the configured
/// fraction width, so every operation's error is below `2^(−32·frac_limbs)`.
///
/// Operands of binary operations must share the same `frac_limbs`; mixing
/// precisions is a programming error and panics.
#[derive(Clone, PartialEq, Eq)]
pub struct UFix {
    limbs: Vec<u32>,
    frac_limbs: usize,
}

impl UFix {
    /// Creates the value zero with `frac_limbs` 32-bit fraction limbs.
    pub fn zero(frac_limbs: usize) -> Self {
        Self {
            limbs: vec![0; frac_limbs + 1],
            frac_limbs,
        }
    }

    /// Creates the fixed-point representation of the integer `v`.
    ///
    /// # Example
    ///
    /// ```
    /// use rlwe_bigfix::UFix;
    /// assert_eq!(UFix::from_u64(7, 4).to_f64(), 7.0);
    /// ```
    pub fn from_u64(v: u64, frac_limbs: usize) -> Self {
        let mut limbs = vec![0; frac_limbs];
        limbs.push(v as u32);
        limbs.push((v >> 32) as u32);
        let mut out = Self { limbs, frac_limbs };
        out.normalize();
        out
    }

    /// Creates the fixed-point value `num / den`, truncated.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use rlwe_bigfix::UFix;
    /// let third = UFix::from_ratio(1, 3, 6);
    /// assert!((third.to_f64() - 1.0 / 3.0).abs() < 1e-18);
    /// ```
    pub fn from_ratio(num: u64, den: u64, frac_limbs: usize) -> Self {
        assert!(den != 0, "division by zero");
        let mut out = Self::from_u64(num, frac_limbs);
        out.div_u64_in_place(den);
        out
    }

    /// Number of fraction limbs (each 32 bits).
    #[inline]
    pub fn frac_limbs(&self) -> usize {
        self.frac_limbs
    }

    /// Number of fraction bits.
    #[inline]
    pub fn frac_bits(&self) -> usize {
        self.frac_limbs * 32
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// The integer part, truncated toward zero.
    ///
    /// # Panics
    ///
    /// Panics if the integer part exceeds `u64::MAX`.
    pub fn floor_u64(&self) -> u64 {
        let ints = &self.limbs[self.frac_limbs..];
        assert!(
            ints.iter().skip(2).all(|&l| l == 0),
            "integer part exceeds u64"
        );
        let lo = *ints.first().unwrap_or(&0) as u64;
        let hi = *ints.get(1).unwrap_or(&0) as u64;
        lo | (hi << 32)
    }

    /// Returns the fractional part (`self − floor(self)`).
    pub fn fract(&self) -> Self {
        let mut limbs = self.limbs[..self.frac_limbs].to_vec();
        limbs.push(0);
        Self {
            limbs,
            frac_limbs: self.frac_limbs,
        }
    }

    /// The `i`-th fraction bit, counting from 1 at the binary point
    /// (so bit `i` has weight `2^(−i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or beyond the configured precision.
    ///
    /// # Example
    ///
    /// ```
    /// use rlwe_bigfix::UFix;
    /// let three_quarters = UFix::from_ratio(3, 4, 2);
    /// assert_eq!(three_quarters.frac_bit(1), 1); // 0.11₂
    /// assert_eq!(three_quarters.frac_bit(2), 1);
    /// assert_eq!(three_quarters.frac_bit(3), 0);
    /// ```
    pub fn frac_bit(&self, i: usize) -> u8 {
        assert!(
            i >= 1 && i <= self.frac_bits(),
            "fraction bit index {i} out of range 1..={}",
            self.frac_bits()
        );
        let limb = self.frac_limbs - 1 - (i - 1) / 32;
        let bit = 31 - ((i - 1) % 32) as u32;
        ((self.limbs[limb] >> bit) & 1) as u8
    }

    /// Adds two values of equal precision.
    #[allow(clippy::needless_range_loop)] // carry-chain over two ragged sources
    pub fn add(&self, rhs: &Self) -> Self {
        self.assert_same_precision(rhs);
        let n = self.limbs.len().max(rhs.limbs.len()) + 1;
        let mut limbs = vec![0u32; n];
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *rhs.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            limbs[i] = s as u32;
            carry = s >> 32;
        }
        debug_assert_eq!(carry, 0);
        let mut out = Self {
            limbs,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        out
    }

    /// Subtracts `rhs` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self` (the type is unsigned).
    pub fn sub(&self, rhs: &Self) -> Self {
        self.checked_sub(rhs)
            .expect("UFix::sub underflow: rhs > self")
    }

    /// Subtracts `rhs` from `self`, returning `None` on underflow.
    #[allow(clippy::needless_range_loop)] // borrow-chain over two ragged sources
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        self.assert_same_precision(rhs);
        if self.cmp(rhs) == Ordering::Less {
            return None;
        }
        let n = self.limbs.len().max(rhs.limbs.len());
        let mut limbs = vec![0u32; n];
        let mut borrow = 0i64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as i64;
            let b = *rhs.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs[i] = d as u32;
        }
        debug_assert_eq!(borrow, 0);
        let mut out = Self {
            limbs,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        Some(out)
    }

    /// Multiplies two values of equal precision, truncating the result to
    /// the same precision.
    pub fn mul(&self, rhs: &Self) -> Self {
        self.assert_same_precision(rhs);
        let mut prod = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = prod[i + j] + a as u64 * b as u64 + carry;
                prod[i + j] = t & 0xFFFF_FFFF;
                carry = t >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let t = prod[k] + carry;
                prod[k] = t & 0xFFFF_FFFF;
                carry = t >> 32;
                k += 1;
            }
        }
        // The product has 2·frac_limbs fraction limbs; drop the lowest
        // frac_limbs of them (truncation toward zero).
        let limbs: Vec<u32> = prod[self.frac_limbs..].iter().map(|&l| l as u32).collect();
        let mut out = Self {
            limbs,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        out
    }

    /// Multiplies by a 64-bit integer.
    pub fn mul_u64(&self, m: u64) -> Self {
        let (m_lo, m_hi) = (m & 0xFFFF_FFFF, m >> 32);
        // Multiply by the two 32-bit halves separately and recombine:
        // self·m = self·m_lo + (self·m_hi) << 32.
        let lo = self.mul_u32_value(m_lo as u32);
        if m_hi == 0 {
            return lo;
        }
        let mut hi = self.mul_u32_value(m_hi as u32);
        hi.limbs.insert(0, 0); // exact shift left by one whole limb
        lo.add(&hi)
    }

    fn mul_u32_value(&self, m: u32) -> Self {
        let mut limbs = vec![0u32; self.limbs.len() + 1];
        let mut carry = 0u64;
        for (i, &a) in self.limbs.iter().enumerate() {
            let t = a as u64 * m as u64 + carry;
            limbs[i] = t as u32;
            carry = t >> 32;
        }
        limbs[self.limbs.len()] = carry as u32;
        let mut out = Self {
            limbs,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        out
    }

    /// Divides by a 64-bit integer in place, truncating.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_u64_in_place(&mut self, d: u64) {
        assert!(d != 0, "division by zero");
        if d <= u32::MAX as u64 {
            let d = d as u32;
            let mut rem = 0u64;
            for limb in self.limbs.iter_mut().rev() {
                let cur = (rem << 32) | *limb as u64;
                *limb = (cur / d as u64) as u32;
                rem = cur % d as u64;
            }
        } else {
            // 64-bit divisor: work in 128-bit chunks of two limbs.
            let mut rem = 0u128;
            for limb in self.limbs.iter_mut().rev() {
                let cur = (rem << 32) | *limb as u128;
                *limb = (cur / d as u128) as u32;
                rem = cur % d as u128;
            }
        }
        self.normalize();
    }

    /// Divides by a 64-bit integer, truncating.
    pub fn div_u64(&self, d: u64) -> Self {
        let mut out = self.clone();
        out.div_u64_in_place(d);
        out
    }

    /// Divides `self` by `rhs` with full fixed-point precision (binary long
    /// division, truncating).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div(&self, rhs: &Self) -> Self {
        self.assert_same_precision(rhs);
        assert!(!rhs.is_zero(), "division by zero");
        // Quotient q = floor(self · 2^frac_bits / rhs) interpreted with
        // frac_bits fraction bits. Work on raw limb integers.
        let mut num = self.limbs.clone();
        // Shift numerator left by frac_bits = frac_limbs whole limbs.
        for _ in 0..self.frac_limbs {
            num.insert(0, 0);
        }
        let den = &rhs.limbs;
        let q = Self::raw_div(&num, den);
        let mut out = Self {
            limbs: q,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        out
    }

    /// Binary long division of raw little-endian limb integers.
    fn raw_div(num: &[u32], den: &[u32]) -> Vec<u32> {
        let nbits = num.len() * 32;
        let mut quot = vec![0u32; num.len()];
        let mut rem: Vec<u32> = vec![0; den.len() + 1];
        for i in (0..nbits).rev() {
            // rem = rem << 1 | bit_i(num)
            let mut carry = (num[i / 32] >> (i % 32)) & 1;
            for l in rem.iter_mut() {
                let new_carry = *l >> 31;
                *l = (*l << 1) | carry;
                carry = new_carry;
            }
            if Self::raw_cmp(&rem, den) != Ordering::Less {
                Self::raw_sub_in_place(&mut rem, den);
                quot[i / 32] |= 1 << (i % 32);
            }
        }
        quot
    }

    fn raw_cmp(a: &[u32], b: &[u32]) -> Ordering {
        let n = a.len().max(b.len());
        for i in (0..n).rev() {
            let x = *a.get(i).unwrap_or(&0);
            let y = *b.get(i).unwrap_or(&0);
            match x.cmp(&y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    #[allow(clippy::needless_range_loop)] // borrow-chain over two ragged sources
    fn raw_sub_in_place(a: &mut [u32], b: &[u32]) {
        let mut borrow = 0i64;
        for i in 0..a.len() {
            let x = a[i] as i64;
            let y = *b.get(i).unwrap_or(&0) as i64;
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            a[i] = d as u32;
        }
        debug_assert_eq!(borrow, 0);
    }

    /// Halves the value (exact shift right by one bit).
    pub fn half(&self) -> Self {
        let mut limbs = self.limbs.clone();
        let mut carry = 0u32;
        for l in limbs.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 31);
            carry = new_carry;
        }
        let mut out = Self {
            limbs,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        out
    }

    /// Doubles the value (exact shift left by one bit).
    pub fn double(&self) -> Self {
        let mut limbs = self.limbs.clone();
        limbs.push(0);
        let mut carry = 0u32;
        for l in limbs.iter_mut() {
            let new_carry = *l >> 31;
            *l = (*l << 1) | carry;
            carry = new_carry;
        }
        let mut out = Self {
            limbs,
            frac_limbs: self.frac_limbs,
        };
        out.normalize();
        out
    }

    /// Raises `self` to an integer power by binary exponentiation,
    /// truncating after every multiplication.
    pub fn pow(&self, mut exp: u64) -> Self {
        let mut acc = Self::from_u64(1, self.frac_limbs);
        let mut base = self.clone();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Approximate conversion to `f64` (for tests and reporting only —
    /// precision beyond 53 bits is lost by design).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for (i, &l) in self.limbs.iter().enumerate() {
            let exp = 32.0 * (i as f64 - self.frac_limbs as f64);
            acc += l as f64 * exp.exp2();
        }
        acc
    }

    /// Hexadecimal rendering of the fraction (most significant nibble
    /// first), used to cross-check constants like π against published
    /// expansions.
    pub fn frac_hex(&self) -> String {
        let mut s = String::with_capacity(self.frac_limbs * 8);
        for &l in self.limbs[..self.frac_limbs].iter().rev() {
            s.push_str(&format!("{l:08X}"));
        }
        s
    }

    /// Raw little-endian limb view (fraction limbs first). Crate-internal:
    /// used by the `exp` module's range guards.
    pub(crate) fn as_limbs(&self) -> &[u32] {
        &self.limbs
    }

    fn assert_same_precision(&self, rhs: &Self) {
        assert_eq!(
            self.frac_limbs, rhs.frac_limbs,
            "UFix operands must share fraction precision"
        );
    }

    fn normalize(&mut self) {
        while self.limbs.len() > self.frac_limbs + 1 && *self.limbs.last().unwrap() == 0 {
            self.limbs.pop();
        }
    }
}

impl PartialOrd for UFix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UFix {
    fn cmp(&self, other: &Self) -> Ordering {
        self.assert_same_precision(other);
        Self::raw_cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for UFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UFix({} + 0x{}/2^{})",
            self.limbs[self.frac_limbs..]
                .iter()
                .rev()
                .fold(0u128, |acc, &l| (acc << 32) | l as u128),
            self.frac_hex(),
            self.frac_bits()
        )
    }
}

impl fmt::Display for UFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trip() {
        for v in [0u64, 1, 42, u32::MAX as u64, u64::MAX / 2] {
            assert_eq!(UFix::from_u64(v, 3).floor_u64(), v);
        }
    }

    #[test]
    fn ratio_matches_f64() {
        for &(n, d) in &[(1u64, 3u64), (2, 7), (355, 113), (1, 1000000)] {
            let x = UFix::from_ratio(n, d, 6);
            assert!((x.to_f64() - n as f64 / d as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn add_sub_round_trip() {
        let a = UFix::from_ratio(22, 7, 5);
        let b = UFix::from_ratio(355, 113, 5);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn sub_underflow_is_detected() {
        let a = UFix::from_u64(1, 4);
        let b = UFix::from_u64(2, 4);
        assert!(a.checked_sub(&b).is_none());
        assert!(b.checked_sub(&a).is_some());
    }

    #[test]
    fn mul_matches_f64_for_small_values() {
        let a = UFix::from_ratio(3, 7, 6);
        let b = UFix::from_ratio(11, 13, 6);
        let p = a.mul(&b);
        assert!((p.to_f64() - (3.0 / 7.0) * (11.0 / 13.0)).abs() < 1e-15);
    }

    #[test]
    fn mul_truncation_error_is_bounded() {
        // (1/3) * 3 = 0.99999... ≤ 1, off by < 2^-frac_bits * 3.
        let third = UFix::from_ratio(1, 3, 6);
        let p = third.mul_u64(3);
        let one = UFix::from_u64(1, 6);
        assert!(p <= one);
        let gap = one.sub(&p);
        assert!(gap.to_f64() < 1e-50);
    }

    #[test]
    fn div_inverts_mul() {
        let a = UFix::from_ratio(123456, 999, 6);
        let b = UFix::from_ratio(7, 5, 6);
        let q = a.mul(&b).div(&b);
        // Truncation may lose the last couple of bits only.
        let err = if q >= a { q.sub(&a) } else { a.sub(&q) };
        assert!(err.to_f64() < 1e-55, "err = {}", err.to_f64());
    }

    #[test]
    fn div_by_large_u64() {
        let a = UFix::from_u64(u64::MAX, 4);
        let q = a.div_u64(u64::MAX);
        assert_eq!(q.floor_u64(), 1);
        assert!(q.fract().is_zero());
    }

    #[test]
    fn frac_bits_of_known_binary_expansion() {
        // 5/8 = 0.101₂
        let x = UFix::from_ratio(5, 8, 2);
        assert_eq!(x.frac_bit(1), 1);
        assert_eq!(x.frac_bit(2), 0);
        assert_eq!(x.frac_bit(3), 1);
        for i in 4..=64 {
            assert_eq!(x.frac_bit(i), 0);
        }
    }

    #[test]
    fn half_double_round_trip() {
        let x = UFix::from_ratio(7, 3, 5);
        assert_eq!(x.double().half(), x);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let x = UFix::from_ratio(9, 10, 6);
        let mut acc = UFix::from_u64(1, 6);
        for e in 0..20u64 {
            let p = x.pow(e);
            let err = if p >= acc { p.sub(&acc) } else { acc.sub(&p) };
            // pow() and the running product truncate at different points;
            // allow a few ulps at 192 fraction bits.
            assert!(err.to_f64() < 1e-55, "e={e}");
            acc = acc.mul(&x);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let a = UFix::from_ratio(1, 3, 4);
        let b = UFix::from_ratio(1, 2, 4);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", UFix::zero(2)).is_empty());
    }
}

//! Arbitrary-precision binary fixed-point arithmetic.
//!
//! The Knuth-Yao sampler in the DATE 2015 paper stores the binary expansions
//! of discrete Gaussian probabilities to a precision that keeps the
//! statistical distance to the true distribution below **2⁻⁹⁰**. `f64` gives
//! only 53 bits, so the probability matrix cannot be built (or verified)
//! with floating point. This crate provides exactly the arithmetic needed:
//!
//! * [`UFix`] — an unsigned binary fixed-point number with a configurable
//!   number of 32-bit fraction limbs (192 fraction bits by default in the
//!   sampler crate).
//! * [`UFix::exp_neg`] — `e^(−x)` to full precision via argument reduction
//!   and a nested Taylor evaluation that never leaves `[0, 1]`.
//! * [`pi`] — π computed from scratch with Machin's formula, validated
//!   against the well-known hexadecimal expansion.
//!
//! # Example
//!
//! ```
//! use rlwe_bigfix::UFix;
//!
//! // exp(-1) to 192 fractional bits, checked against f64.
//! let x = UFix::from_u64(1, 6);
//! let e = x.exp_neg();
//! assert!((e.to_f64() - (-1.0f64).exp()).abs() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exp;
mod pi;
mod ufix;

pub use pi::pi;
pub use ufix::UFix;

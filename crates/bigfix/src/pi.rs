//! π from scratch, to arbitrary precision.
//!
//! The paper's Gaussian parameter is given as `σ = s/√(2π)` with
//! `s = 11.31` (P1) or `s = 12.18` (P2), so the exponent of the Gaussian
//! weight `ρ(k) = exp(−k²/(2σ²)) = exp(−k²·π/s²)` contains π. To build
//! probability tables good to 2⁻⁹⁰ we need π itself well beyond `f64`.

use crate::UFix;

/// Computes π with `frac_limbs · 32` fraction bits using Machin's formula
///
/// ```text
/// π = 16·arctan(1/5) − 4·arctan(1/239)
/// ```
///
/// The arctangent series is evaluated with two separate positive
/// accumulators (even and odd terms) so the unsigned arithmetic never
/// underflows.
///
/// # Example
///
/// ```
/// use rlwe_bigfix::pi;
///
/// let p = pi(6);
/// assert!((p.to_f64() - std::f64::consts::PI).abs() < 1e-15);
/// // First hex digits of the fractional expansion (as in Blowfish's P-array).
/// assert!(p.frac_hex().starts_with("243F6A88"));
/// ```
pub fn pi(frac_limbs: usize) -> UFix {
    let a5 = arctan_inv(5, frac_limbs);
    let a239 = arctan_inv(239, frac_limbs);
    let left = a5.mul_u64(16);
    let right = a239.mul_u64(4);
    left.sub(&right)
}

/// `arctan(1/n)` for integer `n ≥ 2` by the alternating Taylor series
/// `Σ (−1)^k / ((2k+1)·n^(2k+1))`.
fn arctan_inv(n: u64, frac_limbs: usize) -> UFix {
    let mut pos = UFix::zero(frac_limbs);
    let mut neg = UFix::zero(frac_limbs);
    // Running power 1/n^(2k+1); each step divides by n².
    let mut p = UFix::from_ratio(1, n, frac_limbs);
    let n2 = n * n;
    let mut k = 0u64;
    loop {
        let term = p.div_u64(2 * k + 1);
        if term.is_zero() {
            break;
        }
        if k.is_multiple_of(2) {
            pos = pos.add(&term);
        } else {
            neg = neg.add(&term);
        }
        p.div_u64_in_place(n2);
        if p.is_zero() {
            break;
        }
        k += 1;
    }
    pos.sub(&neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_matches_f64() {
        assert!((pi(4).to_f64() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn pi_matches_published_hex_expansion() {
        // π − 3 in hex, 40 digits (e.g. Blowfish P-array / standard tables).
        let p = pi(6);
        assert_eq!(p.floor_u64(), 3);
        assert!(p
            .frac_hex()
            .starts_with("243F6A8885A308D313198A2E03707344A4093822"));
    }

    #[test]
    fn precision_scales_with_limbs() {
        // Computing at 8 limbs and truncating to the first 6 limbs' hex
        // digits must agree with the 6-limb computation except possibly the
        // very last digits.
        let p6 = pi(6).frac_hex();
        let p8 = pi(8).frac_hex();
        assert_eq!(&p8[..44], &p6[..44]);
    }

    #[test]
    fn arctan_one_fifth_matches_f64() {
        let a = arctan_inv(5, 5);
        assert!((a.to_f64() - (0.2f64).atan()).abs() < 1e-15);
    }

    #[test]
    fn machin_identity_holds_in_f64() {
        let lhs = 16.0 * (0.2f64).atan() - 4.0 * (1.0 / 239.0f64).atan();
        assert!((lhs - std::f64::consts::PI).abs() < 1e-12);
    }
}

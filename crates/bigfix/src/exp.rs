//! High-precision `e^(−x)` for building Gaussian probability tables.

use crate::UFix;

impl UFix {
    /// Computes `e^(−self)` to the full configured precision.
    ///
    /// Strategy: split `x = i + f` with integer `i` and `f ∈ [0, 1)`.
    /// `e^(−f)` is evaluated with a *nested* Taylor form
    ///
    /// ```text
    /// e^(−f) = 1 − f·T₂,   Tₘ = 1 − (f/m)·Tₘ₊₁,   T_N = 1
    /// ```
    ///
    /// in which every intermediate `Tₘ` stays inside `(0, 1]`, so the
    /// unsigned truncating arithmetic never underflows. The integer part is
    /// then applied as `e^(−1)^i` by binary exponentiation (`e^(−1)` itself
    /// comes from the same series at `f = 1`).
    ///
    /// Values whose true result is below the representable resolution
    /// (`x ≳ frac_bits · ln 2`) return exactly zero.
    ///
    /// # Example
    ///
    /// ```
    /// use rlwe_bigfix::UFix;
    ///
    /// let x = UFix::from_ratio(5, 2, 6); // 2.5
    /// assert!((x.exp_neg().to_f64() - (-2.5f64).exp()).abs() < 1e-15);
    /// ```
    pub fn exp_neg(&self) -> UFix {
        let fl = self.frac_limbs();
        // Far past the representable range: every limb would truncate to 0.
        // ln2 * frac_bits is the cutoff; use a safe over-approximation.
        let cutoff = (self.frac_bits() as u64) + 64;
        if !self.limbs_above_u64_fit() || self.floor_u64() > cutoff {
            return UFix::zero(fl);
        }
        let i = self.floor_u64();
        let f = self.fract();
        let ef = exp_neg_fraction(&f);
        if i == 0 {
            return ef;
        }
        let e1 = exp_neg_one(fl);
        ef.mul(&e1.pow(i))
    }

    /// True when the integer part fits in a u64 (guards `floor_u64`).
    fn limbs_above_u64_fit(&self) -> bool {
        // Delegate by attempting the cheap check used in floor_u64.
        let ints = self.int_limbs();
        ints.iter().skip(2).all(|&l| l == 0)
    }

    fn int_limbs(&self) -> &[u32] {
        &self.as_limbs()[self.frac_limbs()..]
    }
}

/// `e^(−f)` for `f ∈ [0, 1]` via the nested alternating Taylor form.
fn exp_neg_fraction(f: &UFix) -> UFix {
    let fl = f.frac_limbs();
    let one = UFix::from_u64(1, fl);
    debug_assert!(f <= &one, "exp_neg_fraction needs f <= 1");
    // Enough terms that f^N/N! < 2^-frac_bits even at f = 1:
    // N! grows past 2^192 at N = 41; add margin.
    let terms = term_count(f.frac_bits());
    let mut t = one.clone();
    for m in (1..=terms).rev() {
        // T_m = 1 - (f/m) * T_{m+1}; every factor stays within (0, 1].
        let scaled = f.mul(&t).div_u64(m as u64);
        t = one.sub(&scaled);
    }
    t
}

/// `e^(−1)` at the requested precision.
fn exp_neg_one(frac_limbs: usize) -> UFix {
    exp_neg_fraction(&UFix::from_u64(1, frac_limbs))
}

/// Number of Taylor terms needed so the truncation error of the nested
/// series at `f ≤ 1` is below `2^(−bits)`.
fn term_count(bits: usize) -> usize {
    // Remainder after N terms is ≤ 1/(N+1)!. Find the smallest N with
    // (N+1)! > 2^bits, then pad generously — the series is cheap.
    let mut n = 1usize;
    let mut log2_fact = 0f64;
    while log2_fact <= bits as f64 {
        n += 1;
        log2_fact += (n as f64).log2();
    }
    n + 8
}

#[cfg(test)]
mod tests {
    use super::*;

    const FL: usize = 6; // 192 fraction bits

    #[test]
    fn matches_f64_on_a_grid() {
        for k in 0..60u64 {
            // x = k/4 covers [0, 15).
            let x = UFix::from_ratio(k, 4, FL);
            let want = (-(k as f64) / 4.0).exp();
            let got = x.exp_neg().to_f64();
            assert!(
                (got - want).abs() < 1e-14 * want.max(1e-30),
                "x={}: got {got}, want {want}",
                k as f64 / 4.0
            );
        }
    }

    #[test]
    fn exp_zero_is_one() {
        assert_eq!(UFix::zero(FL).exp_neg(), UFix::from_u64(1, FL));
    }

    #[test]
    fn additivity_exp_a_plus_b() {
        let a = UFix::from_ratio(13, 8, FL);
        let b = UFix::from_ratio(29, 16, FL);
        let lhs = a.add(&b).exp_neg();
        let rhs = a.exp_neg().mul(&b.exp_neg());
        let err = if lhs >= rhs {
            lhs.sub(&rhs)
        } else {
            rhs.sub(&lhs)
        };
        // Truncating arithmetic: allow ~2^-180 of drift at 192 bits.
        assert!(err.to_f64() < 1e-54, "err = {}", err.to_f64());
    }

    #[test]
    fn monotonically_decreasing() {
        let mut prev = UFix::zero(FL).exp_neg();
        for k in 1..100u64 {
            let cur = UFix::from_ratio(k, 10, FL).exp_neg();
            assert!(cur < prev, "k={k}");
            prev = cur;
        }
    }

    #[test]
    fn huge_arguments_underflow_to_zero() {
        let x = UFix::from_u64(100_000, FL);
        assert!(x.exp_neg().is_zero());
    }

    #[test]
    fn result_is_at_most_one() {
        for k in 0..50u64 {
            let x = UFix::from_ratio(k, 7, FL);
            assert!(x.exp_neg() <= UFix::from_u64(1, FL));
        }
    }

    #[test]
    fn known_high_precision_value() {
        // e^-1 = 0.367879441171442321595523770161460867445811131031767834...
        // Verify 60 decimal digits' worth of bits by comparing against the
        // first 16 hex digits of the fractional expansion:
        // e^-1 in hex = 0.5E2D58D8B3BCDF1A...
        let e1 = UFix::from_u64(1, FL).exp_neg();
        let hex = e1.frac_hex();
        assert!(hex.starts_with("5E2D58D8B3BCDF1A"), "e^-1 frac hex = {hex}");
    }
}

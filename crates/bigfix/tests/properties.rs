//! Property-based tests for the fixed-point substrate.

use proptest::prelude::*;
use rlwe_bigfix::UFix;

const FL: usize = 5; // 160 fraction bits

fn small_ratio() -> impl Strategy<Value = (u64, u64)> {
    (0u64..1_000_000, 1u64..1_000_000)
}

proptest! {
    #[test]
    fn add_commutes((an, ad) in small_ratio(), (bn, bd) in small_ratio()) {
        let a = UFix::from_ratio(an, ad, FL);
        let b = UFix::from_ratio(bn, bd, FL);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_then_sub_is_identity((an, ad) in small_ratio(), (bn, bd) in small_ratio()) {
        let a = UFix::from_ratio(an, ad, FL);
        let b = UFix::from_ratio(bn, bd, FL);
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_matches_f64((an, ad) in small_ratio(), (bn, bd) in small_ratio()) {
        let a = UFix::from_ratio(an, ad, FL);
        let b = UFix::from_ratio(bn, bd, FL);
        let want = (an as f64 / ad as f64) * (bn as f64 / bd as f64);
        prop_assert!((a.mul(&b).to_f64() - want).abs() <= want.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn mul_is_commutative((an, ad) in small_ratio(), (bn, bd) in small_ratio()) {
        let a = UFix::from_ratio(an, ad, FL);
        let b = UFix::from_ratio(bn, bd, FL);
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn div_then_mul_is_close((an, ad) in small_ratio(), (bn, bd) in (1u64..1_000_000, 1u64..1_000_000)) {
        let a = UFix::from_ratio(an, ad, FL);
        let b = UFix::from_ratio(bn, bd, FL);
        prop_assume!(!b.is_zero());
        let back = a.div(&b).mul(&b);
        let err = if back >= a { back.sub(&a) } else { a.sub(&back) };
        // Error bounded by a couple of truncations times b.
        prop_assert!(err.to_f64() < 1e-40);
    }

    #[test]
    fn integer_floor_round_trips(v in 0u64..u64::MAX / 2) {
        prop_assert_eq!(UFix::from_u64(v, FL).floor_u64(), v);
    }

    #[test]
    fn exp_neg_within_unit_interval((n, d) in (0u64..2000, 1u64..100)) {
        let x = UFix::from_ratio(n, d, FL);
        let e = x.exp_neg();
        prop_assert!(e <= UFix::from_u64(1, FL));
    }

    #[test]
    fn exp_neg_tracks_f64((n, d) in (0u64..400, 1u64..50)) {
        let xv = n as f64 / d as f64;
        prop_assume!(xv < 80.0);
        let x = UFix::from_ratio(n, d, FL);
        let want = (-xv).exp();
        let got = x.exp_neg().to_f64();
        prop_assert!((got - want).abs() < 1e-13 * want.max(1e-30), "x={xv} got={got} want={want}");
    }

    #[test]
    fn ordering_matches_f64((an, ad) in small_ratio(), (bn, bd) in small_ratio()) {
        let a = UFix::from_ratio(an, ad, FL);
        let b = UFix::from_ratio(bn, bd, FL);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }
}

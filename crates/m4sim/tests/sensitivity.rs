//! Cost-model sensitivity: the reproduction must not hinge on one magic
//! constant. The only calibrated parameter is the `udiv` latency (the
//! paper documents 2–12 cycles); sweeping it across its physical range
//! must keep the *relative* structure of Table I intact, and the
//! calibrated value must sit inside the documented range.

use rlwe_core::{ParamSet, RlweContext};
use rlwe_m4sim::{kernels, CostModel, Machine};

fn ntt_cycles(model: CostModel) -> u64 {
    let ctx = RlweContext::new(ParamSet::P1).unwrap();
    let mut a: Vec<u32> = (0..256u32).map(|i| (i * 3 + 1) % 7681).collect();
    let mut m = Machine::with_model(model, 1);
    kernels::ntt_forward_packed(&mut m, ctx.plan(), &mut a);
    m.cycles()
}

#[test]
fn udiv_latency_is_within_the_documented_range() {
    let c = CostModel::cortex_m4f();
    assert!(
        (2..=12).contains(&c.udiv),
        "udiv = {} out of the paper's 2-12",
        c.udiv
    );
}

#[test]
fn relative_structure_survives_the_udiv_sweep() {
    // Across the whole physical udiv range, the invariants the paper's
    // story rests on must hold: inverse > forward, parallel-3 beats 3x
    // sequential, decrypt ≪ encrypt.
    let ctx = RlweContext::new(ParamSet::P1).unwrap();
    for udiv in [2u64, 6, 12] {
        let model = CostModel {
            udiv,
            ..CostModel::cortex_m4f()
        };
        let fwd = {
            let mut a: Vec<u32> = (0..256u32).map(|i| (i * 3 + 1) % 7681).collect();
            let mut m = Machine::with_model(model, 1);
            kernels::ntt_forward_packed(&mut m, ctx.plan(), &mut a);
            m.cycles()
        };
        let inv = {
            let mut a: Vec<u32> = (0..256u32).map(|i| (i * 3 + 1) % 7681).collect();
            let mut m = Machine::with_model(model, 1);
            kernels::ntt_inverse_packed(&mut m, ctx.plan(), &mut a);
            m.cycles()
        };
        let par3 = {
            let mut a: Vec<u32> = (0..256u32).map(|i| (i * 3 + 1) % 7681).collect();
            let mut b = a.clone();
            let mut c = a.clone();
            let mut m = Machine::with_model(model, 1);
            kernels::ntt_forward3_packed(&mut m, ctx.plan(), [&mut a, &mut b, &mut c]);
            m.cycles()
        };
        assert!(inv > fwd, "udiv={udiv}: inverse {inv} <= forward {fwd}");
        assert!(
            par3 < 3 * fwd,
            "udiv={udiv}: parallel {par3} >= 3x sequential {}",
            3 * fwd
        );
        let msg = vec![0u8; 32];
        let mut mk = Machine::with_model(model, 2);
        let keys = kernels::keygen(&mut mk, &ctx);
        let mut me = Machine::with_model(model, 3);
        let ct = kernels::encrypt(&mut me, &ctx, &keys, &msg);
        let mut md = Machine::with_model(model, 4);
        kernels::decrypt(&mut md, &ctx, &keys, &ct);
        assert!(
            (md.cycles() as f64) < 0.5 * me.cycles() as f64,
            "udiv={udiv}: decrypt not much cheaper than encrypt"
        );
    }
}

#[test]
fn absolute_match_needs_the_slow_division() {
    // With the fastest possible division the model would undershoot the
    // paper badly; with the documented worst case it lands within 10%.
    // This is what "calibrated within the documented range" means.
    let fast = ntt_cycles(CostModel {
        udiv: 2,
        ..CostModel::cortex_m4f()
    });
    let slow = ntt_cycles(CostModel::cortex_m4f());
    let paper = 31_583.0;
    assert!(
        (fast as f64) < 0.85 * paper,
        "fast model {fast} too close to paper"
    );
    assert!(
        (slow as f64 / paper - 1.0).abs() < 0.10,
        "calibrated model {slow} vs paper {paper}"
    );
}

#[test]
fn memory_cost_drives_the_packing_advantage() {
    // The §III-C claim is *about* memory costs: if memory were free, the
    // packed layout would barely matter; at the real 2-cycle cost it
    // saves ~20%.
    let ctx = RlweContext::new(ParamSet::P1).unwrap();
    let gain = |mem: u64| {
        let model = CostModel {
            mem,
            ..CostModel::cortex_m4f()
        };
        let mut a: Vec<u32> = (0..256u32).map(|i| (i * 3 + 1) % 7681).collect();
        let mut b = a.clone();
        let mut mh = Machine::with_model(model, 1);
        kernels::ntt_forward_halfword(&mut mh, ctx.plan(), &mut a);
        let mut mp = Machine::with_model(model, 1);
        kernels::ntt_forward_packed(&mut mp, ctx.plan(), &mut b);
        1.0 - mp.cycles() as f64 / mh.cycles() as f64
    };
    let at_free_memory = gain(0);
    let at_real_memory = gain(2);
    assert!(
        at_real_memory > at_free_memory + 0.05,
        "packing gain {at_real_memory} vs free-memory gain {at_free_memory}"
    );
    assert!((0.15..0.30).contains(&at_real_memory));
}

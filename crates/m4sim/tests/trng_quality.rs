//! The paper's §III-E cites ST's AN4230 note: the STM32F407 TRNG passes
//! the NIST statistical tests. Our simulated TRNG must clear the same bar
//! (the FIPS 140-2 power-up battery) so that cycle results are not
//! artifacts of a broken bit stream.

use rlwe_m4sim::Machine;
use rlwe_sampler::nist::FipsReport;

#[test]
fn simulated_trng_passes_the_fips_battery() {
    for seed in [1u64, 7, 0xABCDEF] {
        let mut m = Machine::cortex_m4f(seed);
        let mut word = 0u32;
        let mut bits_left = 0u32;
        let report = FipsReport::analyze(|| {
            if bits_left == 0 {
                word = m.trng_word();
                bits_left = 32;
            }
            let b = word & 1;
            word >>= 1;
            bits_left -= 1;
            b
        });
        assert!(report.all_ok(), "seed {seed}: {report:?}");
    }
}

#[test]
fn trng_word_rate_matches_the_datasheet_model() {
    // 20_000 bits = 625 words; back-to-back reads must take ~625 * 140
    // cycles (production period) — the §III-E bound the paper works with.
    let mut m = Machine::cortex_m4f(3);
    for _ in 0..625 {
        m.trng_word();
    }
    let cycles = m.cycles();
    let ideal = 625 * m.model().trng_period;
    assert!(
        cycles >= ideal && cycles < ideal + 625 * 10,
        "625 words took {cycles} cycles (floor {ideal})"
    );
}

//! The cycle-charging [`Machine`] and its background-producing TRNG.

use crate::cost::CostModel;
use rlwe_sampler::random::WordSource;

/// A Cortex-M4F cycle-accounting machine.
///
/// Kernels execute real Rust computations and call the charge methods for
/// every conceptual instruction; [`Machine::cycles`] then plays the role
/// of the paper's `DWT_CYCCNT` register. The built-in TRNG produces one
/// 32-bit word per [`CostModel::trng_period`] cycles *in the background*:
/// a read stalls only if it arrives before the next word is ready, exactly
/// like polling the STM32F407's RNG status flag.
#[derive(Debug, Clone)]
pub struct Machine {
    model: CostModel,
    cycles: u64,
    trng_state: u64,
    trng_next_ready: u64,
    trng_words: u64,
    trng_stall_cycles: u64,
}

impl Machine {
    /// Creates a machine with the calibrated M4F cost model and a seeded
    /// deterministic TRNG.
    pub fn cortex_m4f(seed: u64) -> Self {
        Self::with_model(CostModel::cortex_m4f(), seed)
    }

    /// Creates a machine with a custom cost model.
    pub fn with_model(model: CostModel, seed: u64) -> Self {
        Self {
            model,
            cycles: 0,
            trng_state: seed,
            trng_next_ready: 0,
            trng_words: 0,
            trng_stall_cycles: 0,
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Elapsed cycles (the simulated `DWT_CYCCNT`).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// TRNG words consumed so far.
    pub fn trng_words(&self) -> u64 {
        self.trng_words
    }

    /// Cycles lost waiting for the TRNG.
    pub fn trng_stall_cycles(&self) -> u64 {
        self.trng_stall_cycles
    }

    /// Resets the cycle and stall counters; the next TRNG word is treated
    /// as immediately available (a fresh measurement window).
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
        self.trng_next_ready = 0;
        self.trng_stall_cycles = 0;
    }

    // ----- charge methods ---------------------------------------------

    /// Charges `n` data-processing instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.cycles += n * self.model.alu;
    }

    /// Charges one multiply.
    #[inline]
    pub fn mul(&mut self) {
        self.cycles += self.model.mul;
    }

    /// Charges `n` memory accesses (loads or stores).
    #[inline]
    pub fn mem(&mut self, n: u64) {
        self.cycles += n * self.model.mem;
    }

    /// Charges one `clz`.
    #[inline]
    pub fn clz(&mut self) {
        self.cycles += self.model.clz;
    }

    /// Charges one taken branch.
    #[inline]
    pub fn branch(&mut self) {
        self.cycles += self.model.branch;
    }

    /// Charges one leaf-function call + return.
    #[inline]
    pub fn call(&mut self) {
        self.cycles += self.model.call;
    }

    /// Charges a full modular multiplication (mul + udiv + mls).
    #[inline]
    pub fn mulmod(&mut self) {
        self.cycles += self.model.mulmod();
    }

    /// Charges a modular addition.
    #[inline]
    pub fn modadd(&mut self) {
        self.cycles += self.model.modadd();
    }

    /// Charges a modular subtraction.
    #[inline]
    pub fn modsub(&mut self) {
        self.cycles += self.model.modsub();
    }

    /// Charges one loop-iteration bookkeeping (index, compare, branch).
    #[inline]
    pub fn loop_tick(&mut self) {
        self.cycles += self.model.loop_overhead();
    }

    // ----- TRNG --------------------------------------------------------

    /// Reads one 32-bit TRNG word, stalling if the generator has not
    /// finished the next word yet (background production).
    pub fn trng_word(&mut self) -> u32 {
        if self.model.trng_period > 0 && self.cycles < self.trng_next_ready {
            self.trng_stall_cycles += self.trng_next_ready - self.cycles;
            self.cycles = self.trng_next_ready;
        }
        self.cycles += self.model.trng_read;
        if self.model.trng_period > 0 {
            self.trng_next_ready = self.cycles + self.model.trng_period;
        }
        self.trng_words += 1;
        // SplitMix64, truncated to 32 bits.
        self.trng_state = self.trng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.trng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as u32
    }
}

/// Lets the machine's TRNG feed the sampler crate's buffered bit source.
impl WordSource for &mut Machine {
    fn next_word(&mut self) -> u32 {
        self.trng_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = Machine::cortex_m4f(1);
        m.alu(3);
        m.mem(2);
        m.mulmod();
        assert_eq!(m.cycles(), 3 + 4 + 14);
    }

    #[test]
    fn trng_stalls_under_burst_demand() {
        let mut m = Machine::cortex_m4f(1);
        for _ in 0..10 {
            m.trng_word();
        }
        // Back-to-back reads run at the production period.
        assert!(m.trng_stall_cycles() > 0);
        assert!(m.cycles() >= 9 * m.model().trng_period);
        assert_eq!(m.trng_words(), 10);
    }

    #[test]
    fn trng_is_free_running_between_compute() {
        let mut m = Machine::cortex_m4f(1);
        m.trng_word();
        // Do 1000 cycles of compute — the next word is ready by then.
        m.alu(1000);
        let before = m.trng_stall_cycles();
        m.trng_word();
        assert_eq!(m.trng_stall_cycles(), before, "no stall expected");
    }

    #[test]
    fn ideal_trng_never_stalls() {
        let mut m = Machine::with_model(CostModel::cortex_m4f_ideal_trng(), 7);
        for _ in 0..100 {
            m.trng_word();
        }
        assert_eq!(m.trng_stall_cycles(), 0);
    }

    #[test]
    fn trng_values_are_deterministic_per_seed() {
        let mut a = Machine::cortex_m4f(42);
        let mut b = Machine::cortex_m4f(42);
        let mut c = Machine::cortex_m4f(43);
        let wa: Vec<u32> = (0..5).map(|_| a.trng_word()).collect();
        let wb: Vec<u32> = (0..5).map(|_| b.trng_word()).collect();
        let wc: Vec<u32> = (0..5).map(|_| c.trng_word()).collect();
        assert_eq!(wa, wb);
        assert_ne!(wa, wc);
    }
}

//! Table generation: runs the kernels and pairs model output with the
//! paper's measured numbers (consumed by the `rlwe-bench` binaries and by
//! EXPERIMENTS.md).

use rlwe_core::{ParamSet, RlweContext};
use rlwe_obs::{group_digits, Col, TextTable};

use crate::cost::CostModel;
use crate::footprint::{self, SchemeOp};
use crate::kernels;
use crate::machine::Machine;

/// One row of a reproduction table: operation, paper-measured cycles,
/// model cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Operation label as printed in the paper.
    pub operation: String,
    /// Parameter set label.
    pub params: &'static str,
    /// The paper's measured cycle count.
    pub paper_cycles: f64,
    /// Our cost-model cycle count.
    pub model_cycles: f64,
}

impl Row {
    /// Model / paper ratio (1.0 = exact).
    pub fn ratio(&self) -> f64 {
        self.model_cycles / self.paper_cycles
    }
}

fn demo_poly(n: usize, q: u32, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(seed) + 1) % q)
        .collect()
}

/// Regenerates the paper's **Table I** (major-operation cycle counts) for
/// one parameter set.
///
/// Paper values: P1 = (31 583, 84 031, 39 126, 7 294, 108 147),
/// P2 = (73 406, 188 150, 90 583, 14 604, 248 310).
pub fn table1(set: ParamSet) -> Vec<Row> {
    let ctx = RlweContext::new(set).expect("paper parameter sets are valid");
    let (label, paper) = match set {
        ParamSet::P1 => ("P1", [31_583.0, 84_031.0, 39_126.0, 7_294.0, 108_147.0]),
        ParamSet::P2 => ("P2", [73_406.0, 188_150.0, 90_583.0, 14_604.0, 248_310.0]),
    };
    let n = ctx.params().n();
    let q = ctx.params().q();
    let plan = ctx.plan();
    let mut rows = Vec::new();

    let mut m = Machine::cortex_m4f(1);
    let mut a = demo_poly(n, q, 31);
    kernels::ntt_forward_packed(&mut m, plan, &mut a);
    rows.push(Row {
        operation: "NTT transform".into(),
        params: label,
        paper_cycles: paper[0],
        model_cycles: m.cycles() as f64,
    });

    let mut m = Machine::cortex_m4f(1);
    let mut x = demo_poly(n, q, 3);
    let mut y = demo_poly(n, q, 5);
    let mut z = demo_poly(n, q, 7);
    kernels::ntt_forward3_packed(&mut m, plan, [&mut x, &mut y, &mut z]);
    rows.push(Row {
        operation: "Parallel NTT transform".into(),
        params: label,
        paper_cycles: paper[1],
        model_cycles: m.cycles() as f64,
    });

    let mut m = Machine::cortex_m4f(1);
    let mut a = demo_poly(n, q, 11);
    kernels::ntt_inverse_packed(&mut m, plan, &mut a);
    rows.push(Row {
        operation: "Inverse NTT transform".into(),
        params: label,
        paper_cycles: paper[2],
        model_cycles: m.cycles() as f64,
    });

    // Knuth-Yao row: n samples, ideal TRNG (see EXPERIMENTS.md).
    let mut m = Machine::with_model(CostModel::cortex_m4f_ideal_trng(), 1);
    kernels::ky_sample_poly(&mut m, ctx.sampler(), n, q);
    rows.push(Row {
        operation: "Knuth-Yao sampling".into(),
        params: label,
        paper_cycles: paper[3],
        model_cycles: m.cycles() as f64,
    });

    let mut m = Machine::cortex_m4f(1);
    let a = demo_poly(n, q, 13);
    let b = demo_poly(n, q, 17);
    kernels::ntt_multiply(&mut m, plan, &a, &b);
    rows.push(Row {
        operation: "NTT multiplication".into(),
        params: label,
        paper_cycles: paper[4],
        model_cycles: m.cycles() as f64,
    });

    rows
}

/// One row of Table II: cycles plus flash/RAM accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Cycle comparison.
    pub cycles: Row,
    /// Paper's flash (code) bytes.
    pub paper_flash: usize,
    /// Our code-size estimate (tables reported separately).
    pub model_code_estimate: usize,
    /// Exact bytes of precomputed tables in flash.
    pub model_table_flash: usize,
    /// Paper's RAM bytes.
    pub paper_ram: usize,
    /// Our exact RAM accounting.
    pub model_ram: usize,
}

/// Regenerates the paper's **Table II** (full scheme: cycles, flash, RAM).
pub fn table2(set: ParamSet) -> Vec<Table2Row> {
    let ctx = RlweContext::new(set).expect("paper parameter sets are valid");
    let (label, paper_cycles, paper_flash, paper_ram) = match set {
        ParamSet::P1 => (
            "P1",
            [116_772.0, 121_166.0, 43_324.0],
            [1552usize, 1506, 516],
            [1596usize, 3128, 2100],
        ),
        ParamSet::P2 => (
            "P2",
            [263_622.0, 261_939.0, 96_520.0],
            [1552, 1506, 516],
            [3132, 6200, 4148],
        ),
    };
    let msg = vec![0x5Au8; ctx.params().message_bytes()];

    let mut mk = Machine::cortex_m4f(1);
    let keys = kernels::keygen(&mut mk, &ctx);
    let kg_cycles = mk.cycles() as f64;

    let mut me = Machine::cortex_m4f(2);
    let ct = kernels::encrypt(&mut me, &ctx, &keys, &msg);
    let enc_cycles = me.cycles() as f64;

    let mut md = Machine::cortex_m4f(3);
    let out = kernels::decrypt(&mut md, &ctx, &keys, &ct);
    assert_eq!(out, msg, "Table II kernels must round-trip");
    let dec_cycles = md.cycles() as f64;

    let table_flash = footprint::table_flash_bytes(&ctx);
    let ops = [
        ("Key Generation", SchemeOp::KeyGen, kg_cycles),
        ("Encryption", SchemeOp::Encrypt, enc_cycles),
        ("Decryption", SchemeOp::Decrypt, dec_cycles),
    ];
    ops.iter()
        .enumerate()
        .map(|(i, (name, op, cycles))| Table2Row {
            cycles: Row {
                operation: (*name).into(),
                params: label,
                paper_cycles: paper_cycles[i],
                model_cycles: *cycles,
            },
            paper_flash: paper_flash[i],
            model_code_estimate: footprint::code_bytes_estimate(*op),
            model_table_flash: table_flash,
            paper_ram: paper_ram[i],
            model_ram: footprint::ram_bytes(*op, ctx.params()),
        })
        .collect()
}

/// Table I's column layout — one spec shared by the header and the row
/// renderer so they can never desynchronize. Widths include the
/// inter-column spacing (empty separator), matching the historical
/// `format!` strings byte for byte.
fn table1_layout() -> TextTable {
    TextTable::new(vec![
        Col::left("Operation", 28),
        Col::right("paper", 14),
        Col::right("model", 14),
        Col::right("ratio", 10),
        Col::left("   params", 0),
    ])
    .separator("")
}

/// Table I's aligned header line (no trailing newline).
pub fn table1_header() -> String {
    table1_layout().header_line()
}

/// Renders one parameter set's Table I rows, aligned to
/// [`table1_header`], one line per row, newline-terminated.
pub fn render_table1(set: ParamSet) -> String {
    let mut t = table1_layout();
    for row in table1(set) {
        t.row([
            row.operation.clone(),
            group_digits(row.paper_cycles as u64),
            group_digits(row.model_cycles as u64),
            format!("{:.3}", row.ratio()),
            format!("   {}", row.params),
        ]);
    }
    t.render_rows()
}

/// Table II's column layout (see [`table1_layout`]).
fn table2_layout() -> TextTable {
    TextTable::new(vec![
        Col::left("Operation", 16),
        Col::right("paper cyc", 12),
        Col::right("model cyc", 12),
        Col::right("ratio", 8),
        Col::right("paper flash", 14),
        Col::right("est. code", 14),
        Col::right("paper RAM", 12),
        Col::right("model RAM", 12),
        Col::left("  params", 0),
    ])
    .separator("")
}

/// Table II's aligned header line (no trailing newline).
pub fn table2_header() -> String {
    table2_layout().header_line()
}

/// Renders one parameter set's Table II rows, aligned to
/// [`table2_header`], one line per row, newline-terminated.
pub fn render_table2(set: ParamSet) -> String {
    let mut t = table2_layout();
    for row in table2(set) {
        t.row([
            row.cycles.operation.clone(),
            group_digits(row.cycles.paper_cycles as u64),
            group_digits(row.cycles.model_cycles as u64),
            format!("{:.3}", row.cycles.ratio()),
            row.paper_flash.to_string(),
            row.model_code_estimate.to_string(),
            row.paper_ram.to_string(),
            row.model_ram.to_string(),
            format!("  {}", row.cycles.params),
        ]);
    }
    t.render_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_are_within_twenty_percent() {
        for set in [ParamSet::P1, ParamSet::P2] {
            for row in table1(set) {
                let r = row.ratio();
                assert!(
                    (0.8..1.2).contains(&r),
                    "{} {}: model {} vs paper {} (ratio {r:.3})",
                    row.params,
                    row.operation,
                    row.model_cycles,
                    row.paper_cycles
                );
            }
        }
    }

    #[test]
    fn table2_rows_are_within_twenty_percent_and_ram_exact() {
        for set in [ParamSet::P1, ParamSet::P2] {
            for row in table2(set) {
                let r = row.cycles.ratio();
                assert!(
                    (0.8..1.2).contains(&r),
                    "{} {}: model {} vs paper {} (ratio {r:.3})",
                    row.cycles.params,
                    row.cycles.operation,
                    row.cycles.model_cycles,
                    row.cycles.paper_cycles
                );
                assert_eq!(row.model_ram, row.paper_ram, "{}", row.cycles.operation);
            }
        }
    }

    #[test]
    fn rendered_tables_match_the_legacy_format_strings() {
        // The table binaries used hand-maintained `format!` strings
        // before the shared TextTable formatter; the rendered output
        // must be byte-identical to that layout.
        assert_eq!(
            table1_header(),
            format!(
                "{:<28}{:>14}{:>14}{:>10}   params",
                "Operation", "paper", "model", "ratio"
            )
        );
        let rows = table1(ParamSet::P1);
        let legacy: String = rows
            .iter()
            .map(|row| {
                format!(
                    "{:<28}{:>14}{:>14}{:>10.3}   {}\n",
                    row.operation,
                    group_digits(row.paper_cycles as u64),
                    group_digits(row.model_cycles as u64),
                    row.ratio(),
                    row.params
                )
            })
            .collect();
        assert_eq!(render_table1(ParamSet::P1), legacy);

        assert_eq!(
            table2_header(),
            format!(
                "{:<16}{:>12}{:>12}{:>8}{:>14}{:>14}{:>12}{:>12}  params",
                "Operation",
                "paper cyc",
                "model cyc",
                "ratio",
                "paper flash",
                "est. code",
                "paper RAM",
                "model RAM"
            )
        );
        let rows2 = table2(ParamSet::P1);
        let legacy2: String = rows2
            .iter()
            .map(|row| {
                format!(
                    "{:<16}{:>12}{:>12}{:>8.3}{:>14}{:>14}{:>12}{:>12}  {}\n",
                    row.cycles.operation,
                    group_digits(row.cycles.paper_cycles as u64),
                    group_digits(row.cycles.model_cycles as u64),
                    row.cycles.ratio(),
                    row.paper_flash,
                    row.model_code_estimate,
                    row.paper_ram,
                    row.model_ram,
                    row.cycles.params,
                )
            })
            .collect();
        assert_eq!(render_table2(ParamSet::P1), legacy2);
    }
}

//! Instrumented kernels: real computations, charged instruction by
//! instruction.
//!
//! Every kernel here produces the same values as the corresponding
//! `rlwe-ntt` / `rlwe-sampler` / `rlwe-core` routine (the tests assert it)
//! while charging a [`crate::Machine`] for the Cortex-M4F instruction
//! sequence the paper's implementation executes.

mod ablation;
mod ntt;
mod sampler;
mod scheme;

pub use ablation::{
    ky_sample_poly_basic, ky_sample_poly_clz, ky_sample_poly_hw, ntt_forward_halfword,
};
pub use ntt::{
    ntt_forward3_packed, ntt_forward_packed, ntt_inverse_packed, ntt_multiply, pointwise_add,
    pointwise_mul, pointwise_mul_add, pointwise_sub,
};
pub use sampler::{ky_sample_poly, uniform_poly, SampleStats};
pub use scheme::{decrypt, encrypt, keygen, SimKeys};

//! Cycle-charged NTT kernels in the paper's packed two-coefficients-per-
//! word layout (§III-C/§III-D, Algorithm 4).
//!
//! The kernels operate on plain coefficient slices for clarity (values are
//! bit-identical to `rlwe-ntt`); the *charges* follow the packed layout:
//! one memory access moves two coefficients, the inner loop is unrolled
//! two-fold, and the final forward stage is the intra-word epilogue.

use rlwe_ntt::NttPlan;
use rlwe_zq::{add_mod, mul_mod, sub_mod};

use crate::machine::Machine;

/// Per-block header work: load the twiddle factor (and keep it in a
/// register for the whole block), plus block index bookkeeping.
fn charge_block_header(m: &mut Machine) {
    m.mem(1); // twiddle load from the precomputed LUT
    m.alu(2); // block base-pointer computation
    m.branch();
}

/// One packed inner iteration of the forward/inverse word-level stages:
/// two loads, two butterflies, two stores, one loop tick.
fn charge_packed_iteration(m: &mut Machine, butterflies: u64) {
    m.mem(2); // load two packed words
    for _ in 0..butterflies {
        m.mulmod(); // twiddle multiply (mul + udiv + mls)
        m.modadd();
        m.modsub();
    }
    m.alu(2); // halfword pack/unpack data movement (pkhbt class)
    m.mem(2); // store two packed words
    m.loop_tick();
}

/// In-place forward negacyclic NTT, packed charging. Values equal
/// [`NttPlan::forward`].
pub fn ntt_forward_packed(m: &mut Machine, plan: &NttPlan, a: &mut [u32]) {
    let n = plan.n();
    assert_eq!(a.len(), n, "polynomial length must equal n");
    let q = plan.q();
    let tw = plan.forward_twiddles();
    m.call();
    let mut t = n;
    let mut mm = 1usize;
    while mm < n / 2 {
        t >>= 1;
        m.alu(2); // stage bookkeeping
        for i in 0..mm {
            charge_block_header(m);
            let s = tw[mm + i];
            let j1 = 2 * i * t;
            let mut j = j1;
            while j < j1 + t {
                // Two butterflies per packed iteration.
                for jj in [j, j + 1] {
                    let u = a[jj];
                    let v = mul_mod(a[jj + t], s.value, q);
                    a[jj] = add_mod(u, v, q);
                    a[jj + t] = sub_mod(u, v, q);
                }
                charge_packed_iteration(m, 2);
                j += 2;
            }
        }
        mm <<= 1;
    }
    // Intra-word epilogue (span 1): per word one load, one butterfly pair,
    // one store — the paper's Algorithm 4 lines 18–25.
    for i in 0..n / 2 {
        let s = tw[mm + i];
        let u = a[2 * i];
        let v = mul_mod(a[2 * i + 1], s.value, q);
        a[2 * i] = add_mod(u, v, q);
        a[2 * i + 1] = sub_mod(u, v, q);
        m.mem(2); // load word + twiddle
        m.mulmod();
        m.modadd();
        m.modsub();
        m.alu(1); // pack
        m.mem(1); // store word
        m.loop_tick();
    }
}

/// Fused triple forward NTT (the paper's "parallel NTT"): the twiddle
/// load, block header and loop bookkeeping are charged **once** per
/// iteration instead of three times — the source of the measured 8.3%
/// saving over three sequential transforms.
pub fn ntt_forward3_packed(m: &mut Machine, plan: &NttPlan, polys: [&mut [u32]; 3]) {
    let n = plan.n();
    let q = plan.q();
    let [a, b, c] = polys;
    assert_eq!(a.len(), n);
    assert_eq!(b.len(), n);
    assert_eq!(c.len(), n);
    let tw = plan.forward_twiddles();
    m.call();
    let mut t = n;
    let mut mm = 1usize;
    while mm < n / 2 {
        t >>= 1;
        m.alu(2);
        for i in 0..mm {
            charge_block_header(m);
            // One extra ALU op recovers the second and third set's base
            // pointers from the first (the paper stores the three sets
            // contiguously, n/2 words apart, to save registers — §III-D).
            m.alu(1);
            let s = tw[mm + i];
            let j1 = 2 * i * t;
            let mut j = j1;
            while j < j1 + t {
                for poly in [&mut *a, &mut *b, &mut *c] {
                    for jj in [j, j + 1] {
                        let u = poly[jj];
                        let v = mul_mod(poly[jj + t], s.value, q);
                        poly[jj] = add_mod(u, v, q);
                        poly[jj + t] = sub_mod(u, v, q);
                    }
                    // Data work is charged per set; loop overhead is not.
                    m.mem(2);
                    m.mulmod();
                    m.mulmod();
                    m.modadd();
                    m.modadd();
                    m.modsub();
                    m.modsub();
                    m.alu(2);
                    m.mem(2);
                }
                m.loop_tick(); // shared
                j += 2;
            }
        }
        mm <<= 1;
    }
    for i in 0..n / 2 {
        let s = tw[mm + i];
        m.mem(1); // shared twiddle load
        for poly in [&mut *a, &mut *b, &mut *c] {
            let u = poly[2 * i];
            let v = mul_mod(poly[2 * i + 1], s.value, q);
            poly[2 * i] = add_mod(u, v, q);
            poly[2 * i + 1] = sub_mod(u, v, q);
            m.mem(1);
            m.mulmod();
            m.modadd();
            m.modsub();
            m.alu(1);
            m.mem(1);
        }
        m.loop_tick();
    }
}

/// In-place inverse negacyclic NTT including the `n⁻¹` scaling pass,
/// packed charging. Values equal [`NttPlan::inverse`].
pub fn ntt_inverse_packed(m: &mut Machine, plan: &NttPlan, a: &mut [u32]) {
    let n = plan.n();
    assert_eq!(a.len(), n, "polynomial length must equal n");
    let q = plan.q();
    let tw = plan.inverse_twiddles();
    m.call();
    // Intra-word first stage.
    let h = n / 2;
    for i in 0..h {
        let s = tw[h + i];
        let u = a[2 * i];
        let v = a[2 * i + 1];
        a[2 * i] = add_mod(u, v, q);
        a[2 * i + 1] = mul_mod(sub_mod(u, v, q), s.value, q);
        m.mem(2);
        m.modadd();
        m.modsub();
        m.mulmod();
        m.alu(1);
        m.mem(1);
        m.loop_tick();
    }
    // Word-level stages.
    let mut t = 2usize;
    let mut mm = n / 2;
    while mm > 1 {
        let half = mm >> 1;
        m.alu(2);
        let mut j1 = 0usize;
        for i in 0..half {
            charge_block_header(m);
            let s = tw[half + i];
            let mut j = j1;
            while j < j1 + t {
                for jj in [j, j + 1] {
                    let u = a[jj];
                    let v = a[jj + t];
                    a[jj] = add_mod(u, v, q);
                    a[jj + t] = mul_mod(sub_mod(u, v, q), s.value, q);
                }
                charge_packed_iteration(m, 2);
                j += 2;
            }
            j1 += 2 * t;
        }
        t <<= 1;
        mm = half;
    }
    // n^-1 scaling: two coefficients per iteration.
    let n_inv = plan.n_inv();
    let mut i = 0;
    while i < n {
        a[i] = mul_mod(a[i], n_inv, q);
        a[i + 1] = mul_mod(a[i + 1], n_inv, q);
        m.mem(1);
        m.mulmod();
        m.mulmod();
        m.alu(2);
        m.mem(1);
        m.loop_tick();
        i += 2;
    }
}

/// Charges one fused two-coefficient pointwise iteration with the given
/// number of modular multiplies and adds per coefficient.
fn charge_pointwise_iteration(m: &mut Machine, loads: u64, mulmods: u64, modadds: u64) {
    m.mem(loads);
    for _ in 0..mulmods {
        m.mulmod();
    }
    for _ in 0..modadds {
        m.modadd();
    }
    m.alu(2); // pack
    m.mem(1); // store
    m.loop_tick();
}

/// Pointwise product `a∘b` (packed charging). Values equal
/// `rlwe_ntt::pointwise::mul`.
pub fn pointwise_mul(m: &mut Machine, plan: &NttPlan, a: &[u32], b: &[u32]) -> Vec<u32> {
    let q = plan.q();
    m.call();
    let out: Vec<u32> = a.iter().zip(b).map(|(&x, &y)| mul_mod(x, y, q)).collect();
    let mut i = 0;
    while i < a.len() {
        charge_pointwise_iteration(m, 2, 2, 0);
        i += 2;
    }
    out
}

/// Fused pointwise multiply-add `a∘b + d` — the ciphertext computations.
pub fn pointwise_mul_add(
    m: &mut Machine,
    plan: &NttPlan,
    a: &[u32],
    b: &[u32],
    d: &[u32],
) -> Vec<u32> {
    let q = plan.q();
    m.call();
    let out: Vec<u32> = a
        .iter()
        .zip(b)
        .zip(d)
        .map(|((&x, &y), &z)| add_mod(mul_mod(x, y, q), z, q))
        .collect();
    let mut i = 0;
    while i < a.len() {
        charge_pointwise_iteration(m, 3, 2, 2);
        i += 2;
    }
    out
}

/// Pointwise sum (packed charging).
pub fn pointwise_add(m: &mut Machine, plan: &NttPlan, a: &[u32], b: &[u32]) -> Vec<u32> {
    let q = plan.q();
    m.call();
    let out: Vec<u32> = a.iter().zip(b).map(|(&x, &y)| add_mod(x, y, q)).collect();
    let mut i = 0;
    while i < a.len() {
        m.mem(2);
        m.modadd();
        m.modadd();
        m.alu(2);
        m.mem(1);
        m.loop_tick();
        i += 2;
    }
    out
}

/// Pointwise difference (packed charging).
pub fn pointwise_sub(m: &mut Machine, plan: &NttPlan, a: &[u32], b: &[u32]) -> Vec<u32> {
    let q = plan.q();
    m.call();
    let out: Vec<u32> = a.iter().zip(b).map(|(&x, &y)| sub_mod(x, y, q)).collect();
    let mut i = 0;
    while i < a.len() {
        m.mem(2);
        m.modsub();
        m.modsub();
        m.alu(2);
        m.mem(1);
        m.loop_tick();
        i += 2;
    }
    out
}

/// Full NTT polynomial multiplication — the paper's Table I "NTT
/// multiplication" row: two forward transforms, a pointwise product, one
/// inverse transform.
pub fn ntt_multiply(m: &mut Machine, plan: &NttPlan, a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    ntt_forward_packed(m, plan, &mut fa);
    ntt_forward_packed(m, plan, &mut fb);
    let mut c = pointwise_mul(m, plan, &fa, &fb);
    ntt_inverse_packed(m, plan, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlwe_ntt::schoolbook;

    fn plan_p1() -> NttPlan {
        NttPlan::new(256, 7681).unwrap()
    }

    fn demo(n: usize, q: u32, seed: u32) -> Vec<u32> {
        (0..n as u32)
            .map(|i| (i.wrapping_mul(seed) + 3) % q)
            .collect()
    }

    #[test]
    fn forward_kernel_matches_library() {
        let plan = plan_p1();
        let orig = demo(256, 7681, 31);
        let mut a = orig.clone();
        let mut m = Machine::cortex_m4f(1);
        ntt_forward_packed(&mut m, &plan, &mut a);
        assert_eq!(a, plan.forward_copy(&orig));
        assert!(m.cycles() > 10_000);
    }

    #[test]
    fn forward_cycles_near_paper_value() {
        // Paper Table I: 31 583 cycles for the P1 forward transform.
        let plan = plan_p1();
        let mut a = demo(256, 7681, 7);
        let mut m = Machine::cortex_m4f(1);
        ntt_forward_packed(&mut m, &plan, &mut a);
        let cycles = m.cycles() as f64;
        assert!(
            (cycles / 31_583.0 - 1.0).abs() < 0.20,
            "forward NTT model {cycles} vs paper 31583"
        );
    }

    #[test]
    fn inverse_kernel_round_trips() {
        let plan = plan_p1();
        let orig = demo(256, 7681, 5);
        let mut a = orig.clone();
        let mut m = Machine::cortex_m4f(1);
        ntt_forward_packed(&mut m, &plan, &mut a);
        ntt_inverse_packed(&mut m, &plan, &mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn inverse_costs_more_than_forward() {
        // Table I: 39 126 vs 31 583 — the inverse pays for the n^-1 pass.
        let plan = plan_p1();
        let mut m1 = Machine::cortex_m4f(1);
        let mut a = demo(256, 7681, 3);
        ntt_forward_packed(&mut m1, &plan, &mut a);
        let fwd = m1.cycles();
        let mut m2 = Machine::cortex_m4f(1);
        let mut b = demo(256, 7681, 3);
        ntt_inverse_packed(&mut m2, &plan, &mut b);
        let inv = m2.cycles();
        assert!(inv > fwd, "inverse {inv} <= forward {fwd}");
        let ratio = inv as f64 / fwd as f64;
        assert!((1.05..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn parallel_is_cheaper_than_three_sequential() {
        // Table I: 84 031 vs 3 x 31 583 = 94 749 (8.3% saving).
        let plan = plan_p1();
        let mut m3 = Machine::cortex_m4f(1);
        let mut a = demo(256, 7681, 3);
        let mut b = demo(256, 7681, 5);
        let mut c = demo(256, 7681, 7);
        ntt_forward3_packed(&mut m3, &plan, [&mut a, &mut b, &mut c]);
        let fused = m3.cycles();

        let mut ms = Machine::cortex_m4f(1);
        for seed in [3u32, 5, 7] {
            let mut x = demo(256, 7681, seed);
            ntt_forward_packed(&mut ms, &plan, &mut x);
        }
        let sequential = ms.cycles();
        let saving = 1.0 - fused as f64 / sequential as f64;
        assert!(
            (0.02..0.2).contains(&saving),
            "parallel saving {saving} outside the plausible band (paper: 8.3%)"
        );
        // Functional equality with the library.
        assert_eq!(a, plan.forward_copy(&demo(256, 7681, 3)));
    }

    #[test]
    fn ntt_multiply_matches_schoolbook_and_paper_cycles() {
        let plan = plan_p1();
        let a = demo(256, 7681, 11);
        let b = demo(256, 7681, 13);
        let mut m = Machine::cortex_m4f(1);
        let c = ntt_multiply(&mut m, &plan, &a, &b);
        assert_eq!(c, schoolbook::negacyclic_mul(&a, &b, 7681));
        // Paper Table I: 108 147 cycles.
        let cycles = m.cycles() as f64;
        assert!(
            (cycles / 108_147.0 - 1.0).abs() < 0.20,
            "NTT multiply model {cycles} vs paper 108147"
        );
    }

    #[test]
    fn p2_scales_like_the_paper() {
        // Table I: P2 forward NTT = 73 406 = 2.32x the P1 cost.
        let plan2 = NttPlan::new(512, 12289).unwrap();
        let mut m = Machine::cortex_m4f(1);
        let mut a = demo(512, 12289, 9);
        ntt_forward_packed(&mut m, &plan2, &mut a);
        let p2 = m.cycles() as f64;
        let mut m1 = Machine::cortex_m4f(1);
        let mut b = demo(256, 7681, 9);
        ntt_forward_packed(&mut m1, &plan_p1(), &mut b);
        let p1 = m1.cycles() as f64;
        let ratio = p2 / p1;
        assert!(
            (2.0..2.5).contains(&ratio),
            "P2/P1 ratio {ratio} (paper: 2.32)"
        );
    }

    #[test]
    fn pointwise_kernels_match_library() {
        let plan = plan_p1();
        let a = demo(256, 7681, 3);
        let b = demo(256, 7681, 19);
        let d = demo(256, 7681, 23);
        let mut m = Machine::cortex_m4f(1);
        assert_eq!(
            pointwise_mul(&mut m, &plan, &a, &b),
            rlwe_ntt::pointwise::mul(&a, &b, plan.modulus()).unwrap()
        );
        assert_eq!(
            pointwise_mul_add(&mut m, &plan, &a, &b, &d),
            rlwe_ntt::pointwise::mul_add(&a, &b, &d, plan.modulus()).unwrap()
        );
        assert_eq!(
            pointwise_add(&mut m, &plan, &a, &b),
            rlwe_ntt::pointwise::add(&a, &b, plan.modulus()).unwrap()
        );
        assert_eq!(
            pointwise_sub(&mut m, &plan, &a, &b),
            rlwe_ntt::pointwise::sub(&a, &b, plan.modulus()).unwrap()
        );
    }
}

//! Full-scheme kernels: key generation, encryption, decryption — the rows
//! of the paper's Table II.

use rlwe_core::{decode_message, encode_message, RlweContext};

use crate::kernels::ntt::{
    ntt_forward3_packed, ntt_forward_packed, ntt_inverse_packed, pointwise_add, pointwise_mul,
    pointwise_mul_add, pointwise_sub,
};
use crate::kernels::sampler::{ky_sample_poly, uniform_poly};
use crate::machine::Machine;

/// NTT-domain key material produced by the [`keygen`] kernel.
#[derive(Debug, Clone)]
pub struct SimKeys {
    /// The uniform public polynomial ã.
    pub a_hat: Vec<u32>,
    /// `p̃ = r̃₁ − ã∘r̃₂`.
    pub p_hat: Vec<u32>,
    /// The secret `r̃₂`.
    pub r2_hat: Vec<u32>,
}

/// Key generation (§II-A.1): uniform `ã` (TRNG-bound), two Gaussian
/// polynomials, two forward NTTs, one pointwise multiply, one subtraction.
pub fn keygen(m: &mut Machine, ctx: &RlweContext) -> SimKeys {
    let n = ctx.params().n();
    let q = ctx.params().q();
    let a_hat = uniform_poly(m, n, q);
    let (mut r1, _) = ky_sample_poly(m, ctx.sampler(), n, q);
    let (mut r2, _) = ky_sample_poly(m, ctx.sampler(), n, q);
    ntt_forward_packed(m, ctx.plan(), &mut r1);
    ntt_forward_packed(m, ctx.plan(), &mut r2);
    let ar2 = pointwise_mul(m, ctx.plan(), &a_hat, &r2);
    let p_hat = pointwise_sub(m, ctx.plan(), &r1, &ar2);
    SimKeys {
        a_hat,
        p_hat,
        r2_hat: r2,
    }
}

/// Encryption (§II-A.2): three Gaussian polynomials, message encoding,
/// one addition, the fused **parallel NTT**, two pointwise multiply-adds.
pub fn encrypt(
    m: &mut Machine,
    ctx: &RlweContext,
    keys: &SimKeys,
    msg: &[u8],
) -> (Vec<u32>, Vec<u32>) {
    let n = ctx.params().n();
    let q = ctx.params().q();
    let (mut e1, _) = ky_sample_poly(m, ctx.sampler(), n, q);
    let (mut e2, _) = ky_sample_poly(m, ctx.sampler(), n, q);
    let (e3, _) = ky_sample_poly(m, ctx.sampler(), n, q);
    // Encode the message: threshold per bit; charged as a bit-extract,
    // a conditional select and a packed store per two coefficients.
    let m_bar = encode_message(msg, n, q);
    {
        let mut i = 0;
        while i < n {
            m.alu(4);
            m.mem(1);
            m.loop_tick();
            i += 2;
        }
    }
    let mut e3m = pointwise_add(m, ctx.plan(), &e3, &m_bar);
    ntt_forward3_packed(m, ctx.plan(), [&mut e1, &mut e2, &mut e3m]);
    let c1 = pointwise_mul_add(m, ctx.plan(), &keys.a_hat, &e1, &e2);
    let c2 = pointwise_mul_add(m, ctx.plan(), &keys.p_hat, &e1, &e3m);
    (c1, c2)
}

/// Decryption (§II-A.3): one fused pointwise multiply-add, one inverse
/// NTT, threshold decoding.
pub fn decrypt(
    m: &mut Machine,
    ctx: &RlweContext,
    keys: &SimKeys,
    ct: &(Vec<u32>, Vec<u32>),
) -> Vec<u8> {
    let n = ctx.params().n();
    let q = ctx.params().q();
    let mut pre = pointwise_mul_add(m, ctx.plan(), &ct.0, &keys.r2_hat, &ct.1);
    ntt_inverse_packed(m, ctx.plan(), &mut pre);
    // Threshold decode: two compares + bit insert per coefficient.
    {
        let mut i = 0;
        while i < n {
            m.mem(1);
            m.alu(6);
            m.loop_tick();
            i += 2;
        }
        m.mem((n / 8 / 4) as u64); // write out the packed message words
    }
    decode_message(&pre, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlwe_core::ParamSet;

    fn ctx(set: ParamSet) -> RlweContext {
        RlweContext::new(set).unwrap()
    }

    #[test]
    fn kernel_scheme_round_trips() {
        let ctx = ctx(ParamSet::P1);
        let mut m = Machine::cortex_m4f(11);
        let keys = keygen(&mut m, &ctx);
        let msg: Vec<u8> = (0..32).map(|i| (i * 7 + 1) as u8).collect();
        let ct = encrypt(&mut m, &ctx, &keys, &msg);
        let got = decrypt(&mut m, &ctx, &keys, &ct);
        assert_eq!(got, msg);
    }

    #[test]
    fn table2_p1_cycle_shape() {
        // Paper Table II (P1): keygen 116 772, encrypt 121 166,
        // decrypt 43 324. The model must land within ±20% of each and
        // preserve the ordering decrypt < keygen ~ encrypt.
        let ctx = ctx(ParamSet::P1);
        let msg = vec![0x5Au8; 32];

        let mut mk = Machine::cortex_m4f(1);
        let keys = keygen(&mut mk, &ctx);
        let kg = mk.cycles() as f64;

        let mut me = Machine::cortex_m4f(2);
        let ct = encrypt(&mut me, &ctx, &keys, &msg);
        let enc = me.cycles() as f64;

        let mut md = Machine::cortex_m4f(3);
        decrypt(&mut md, &ctx, &keys, &ct);
        let dec = md.cycles() as f64;

        assert!((kg / 116_772.0 - 1.0).abs() < 0.20, "keygen {kg}");
        assert!((enc / 121_166.0 - 1.0).abs() < 0.20, "encrypt {enc}");
        assert!((dec / 43_324.0 - 1.0).abs() < 0.20, "decrypt {dec}");
        assert!(dec < enc && dec < kg, "decryption must be the cheapest");
    }

    #[test]
    fn table2_p2_scales_like_the_paper() {
        // Paper: P2/P1 ratios ≈ 2.26 (keygen), 2.16 (encrypt), 2.23 (dec).
        let c1 = ctx(ParamSet::P1);
        let c2 = ctx(ParamSet::P2);
        let mut m1 = Machine::cortex_m4f(1);
        let k1 = keygen(&mut m1, &c1);
        let msg1 = vec![0u8; 32];
        let mut e1m = Machine::cortex_m4f(2);
        encrypt(&mut e1m, &c1, &k1, &msg1);

        let mut m2 = Machine::cortex_m4f(1);
        let k2 = keygen(&mut m2, &c2);
        let msg2 = vec![0u8; 64];
        let mut e2m = Machine::cortex_m4f(2);
        encrypt(&mut e2m, &c2, &k2, &msg2);

        let kg_ratio = m2.cycles() as f64 / m1.cycles() as f64;
        let enc_ratio = e2m.cycles() as f64 / e1m.cycles() as f64;
        assert!((1.9..2.6).contains(&kg_ratio), "keygen P2/P1 = {kg_ratio}");
        assert!(
            (1.9..2.6).contains(&enc_ratio),
            "encrypt P2/P1 = {enc_ratio}"
        );
    }

    #[test]
    fn decrypt_is_roughly_a_third_of_encrypt() {
        // Paper: decryption needs 35% fewer cycles than encryption — in
        // fact 43 324 / 121 166 = 0.358.
        let ctx = ctx(ParamSet::P1);
        let mut mk = Machine::cortex_m4f(4);
        let keys = keygen(&mut mk, &ctx);
        let msg = vec![0xFFu8; 32];
        let mut me = Machine::cortex_m4f(5);
        let ct = encrypt(&mut me, &ctx, &keys, &msg);
        let mut md = Machine::cortex_m4f(6);
        decrypt(&mut md, &ctx, &keys, &ct);
        let frac = md.cycles() as f64 / me.cycles() as f64;
        assert!(
            (0.25..0.50).contains(&frac),
            "dec/enc = {frac} (paper 0.358)"
        );
    }
}

//! Ablation kernels: the *unoptimised* baselines the paper improves on,
//! so each §III technique can be costed in isolation.
//!
//! * [`ntt_forward_halfword`] — the Algorithm 3 baseline: one halfword
//!   memory access per coefficient, no unrolling (§III-C explains why this
//!   is wasteful: a halfword access costs the same 2 cycles as a word).
//! * [`ky_sample_poly_basic`] — Algorithm 1 with per-bit scanning ("each
//!   iteration of the inner loop requires at least 8 cycles", §III-B1).
//! * [`ky_sample_poly_hw`] — the prior-art Hamming-weight column skip.
//! * [`ky_sample_poly_clz`] — §III-B4: trimmed words + `clz` zero-run
//!   skipping, no lookup tables.
//!
//! Together with `kernels::ntt_forward_packed` and
//! `kernels::ky_sample_poly` (the production two-LUT sampler) these
//! reproduce the optimisation ladders quantitatively — run
//! `cargo run -p rlwe-bench --bin ablation`.

use rlwe_ntt::NttPlan;
use rlwe_sampler::random::BitSource;
use rlwe_sampler::{KnuthYao, SignedSample};
use rlwe_zq::{add_mod, mul_mod, sub_mod};

use crate::machine::Machine;

/// Forward NTT with the naive §III-C memory layout: every coefficient is
/// loaded and stored as an individual halfword, and the inner loop is not
/// unrolled. Values are identical to the packed kernel; only the charges
/// differ (twice the memory operations, twice the loop overhead).
pub fn ntt_forward_halfword(m: &mut Machine, plan: &NttPlan, a: &mut [u32]) {
    let n = plan.n();
    assert_eq!(a.len(), n, "polynomial length must equal n");
    let q = plan.q();
    let tw = plan.forward_twiddles();
    m.call();
    let mut t = n;
    let mut mm = 1usize;
    while mm < n {
        t >>= 1;
        m.alu(2);
        for i in 0..mm {
            m.mem(1); // twiddle load
            m.alu(2); // block base pointer
            m.branch();
            let s = tw[mm + i];
            let j1 = 2 * i * t;
            for j in j1..j1 + t {
                let u = a[j];
                let v = mul_mod(a[j + t], s.value, q);
                a[j] = add_mod(u, v, q);
                a[j + t] = sub_mod(u, v, q);
                // One butterfly per iteration: two halfword loads, the
                // arithmetic, two halfword stores, two pointer
                // calculations (the paper's §III-C complaint), and full
                // per-butterfly loop overhead.
                m.mem(2);
                m.mulmod();
                m.modadd();
                m.modsub();
                m.alu(2);
                m.mem(2);
                m.loop_tick();
            }
        }
        mm <<= 1;
    }
}

/// Charged bit source shared by the sampler ablation kernels.
struct ChargedBits<'m> {
    m: &'m mut Machine,
    register: u32,
    drawn: u64,
}

impl<'m> ChargedBits<'m> {
    fn new(m: &'m mut Machine) -> Self {
        Self {
            m,
            register: 1,
            drawn: 0,
        }
    }
}

impl BitSource for ChargedBits<'_> {
    fn take_bit(&mut self) -> u32 {
        if self.register == 1 {
            self.register = self.m.trng_word() | 0x8000_0000;
            self.m.alu(1);
        }
        let bit = self.register & 1;
        self.register >>= 1;
        self.m.alu(2); // shift + mask per drawn bit
        self.drawn += 1;
        bit
    }

    fn bits_drawn(&self) -> u64 {
        self.drawn
    }
}

/// Shared driver: runs `n` samples through a library sampler variant while
/// charging per-level costs derived from the bits the walk consumed.
fn sample_poly_with<F>(
    m: &mut Machine,
    n: usize,
    q: u32,
    per_level_cost: F,
    sampler: impl Fn(&mut ChargedBits<'_>) -> SignedSample,
) -> Vec<u32>
where
    F: Fn(&mut Machine, u64),
{
    let mut out = Vec::with_capacity(n);
    let mut bits = ChargedBits::new(m);
    for _ in 0..n {
        let before = bits.bits_drawn();
        let s = sampler(&mut bits);
        let levels = (bits.bits_drawn() - before).saturating_sub(1);
        let m = &mut *bits.m;
        m.call();
        per_level_cost(m, levels);
        m.alu(2); // sign application
        m.mem(1); // store
        m.loop_tick();
        out.push(s.to_zq(q));
    }
    out
}

/// Algorithm 1 exactly as the paper costs it: every visited level scans
/// every matrix row at ≥ 8 cycles per bit (§III-B1).
pub fn ky_sample_poly_basic(m: &mut Machine, ky: &KnuthYao, n: usize, q: u32) -> Vec<u32> {
    let rows = ky.pmat().rows() as u64;
    sample_poly_with(
        m,
        n,
        q,
        |m, levels| {
            // d update per level + the full per-bit row scan. The paper:
            // "each iteration of the inner loop requires at least 8
            // cycles". On average the terminal lands mid-column, so the
            // final level scans half the rows.
            for _ in 0..levels {
                m.alu(2);
            }
            let scanned_bits = levels.saturating_sub(1) * rows + rows / 2;
            m.alu(8 * scanned_bits);
        },
        |bits| ky.sample_basic(bits),
    )
}

/// The prior-art Hamming-weight skip: every level costs a weight load and
/// compare; only the terminal column is bit-scanned.
pub fn ky_sample_poly_hw(m: &mut Machine, ky: &KnuthYao, n: usize, q: u32) -> Vec<u32> {
    let rows = ky.pmat().rows() as u64;
    sample_poly_with(
        m,
        n,
        q,
        |m, levels| {
            for _ in 0..levels {
                m.mem(1); // Hamming weight load
                m.alu(3); // d update, compare, subtract
                m.branch();
            }
            // Terminal column: per-bit scan, on average half the rows.
            m.alu(8 * (rows / 2));
        },
        |bits| ky.sample_hw(bits),
    )
}

/// §III-B4: trimmed column words + `clz` zero-run skipping, no LUTs.
pub fn ky_sample_poly_clz(m: &mut Machine, ky: &KnuthYao, n: usize, q: u32) -> Vec<u32> {
    let pmat = ky.pmat();
    // Precompute per-column charge parameters: stored words and weight.
    let words: Vec<u64> = (0..pmat.cols())
        .map(|c| (pmat.words_per_col() - pmat.column_skipped_words(c)) as u64)
        .collect();
    let hw = pmat.hamming_weights().to_vec();
    sample_poly_with(
        m,
        n,
        q,
        |m, levels| {
            for l in 0..levels as usize {
                let col = l.min(words.len() - 1);
                m.alu(2); // d update
                m.mem(words[col]); // word loads
                                   // Each set bit costs a clz + shift + decrement + test;
                                   // on average half the column's ones are visited on the
                                   // terminal level, all of them otherwise.
                let ones = if l + 1 == levels as usize {
                    hw[col] as u64 / 2
                } else {
                    hw[col] as u64
                };
                for _ in 0..ones {
                    m.clz();
                    m.alu(3);
                }
                m.branch();
            }
        },
        |bits| ky.sample_clz(bits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::kernels::{ky_sample_poly, ntt_forward_packed};
    use rlwe_sampler::ProbabilityMatrix;

    fn plan() -> NttPlan {
        NttPlan::new(256, 7681).unwrap()
    }

    fn sampler() -> KnuthYao {
        KnuthYao::new(ProbabilityMatrix::paper_p1().unwrap()).unwrap()
    }

    #[test]
    fn halfword_ntt_computes_the_same_transform() {
        let plan = plan();
        let orig: Vec<u32> = (0..256u32).map(|i| (i * 7 + 5) % 7681).collect();
        let mut a = orig.clone();
        let mut m = Machine::cortex_m4f(1);
        ntt_forward_halfword(&mut m, &plan, &mut a);
        assert_eq!(a, plan.forward_copy(&orig));
    }

    #[test]
    fn packing_halves_memory_accesses_and_speeds_up_the_ntt() {
        // §III-C/D: "reduce the number of memory accesses, pointer
        // operations, and loop overhead by 50%".
        let plan = plan();
        let mut a: Vec<u32> = (0..256u32).map(|i| (i * 3 + 1) % 7681).collect();
        let mut b = a.clone();
        let mut mh = Machine::cortex_m4f(1);
        ntt_forward_halfword(&mut mh, &plan, &mut a);
        let mut mp = Machine::cortex_m4f(1);
        ntt_forward_packed(&mut mp, &plan, &mut b);
        let ratio = mp.cycles() as f64 / mh.cycles() as f64;
        assert!(
            (0.6..0.9).contains(&ratio),
            "packed/halfword = {ratio} ({} vs {})",
            mp.cycles(),
            mh.cycles()
        );
    }

    #[test]
    fn sampler_ladder_is_strictly_ordered() {
        // basic > hw > clz > two-LUT, with large gaps — the paper's whole
        // §III-B story.
        let ky = sampler();
        let n = 4096;
        let model = CostModel::cortex_m4f_ideal_trng();
        let run = |f: &dyn Fn(&mut Machine, &KnuthYao, usize, u32) -> Vec<u32>| {
            let mut m = Machine::with_model(model, 5);
            f(&mut m, &ky, n, 7681);
            m.cycles() as f64 / n as f64
        };
        let basic = run(&ky_sample_poly_basic);
        let hw = run(&ky_sample_poly_hw);
        let clz = run(&ky_sample_poly_clz);
        let lut = {
            let mut m = Machine::with_model(model, 5);
            ky_sample_poly(&mut m, &ky, n, 7681);
            m.cycles() as f64 / n as f64
        };
        assert!(
            basic > 2.0 * hw && hw > 1.2 * clz && clz > 1.5 * lut,
            "ladder: basic {basic:.1} / hw {hw:.1} / clz {clz:.1} / lut {lut:.1}"
        );
        assert!(
            basic > 500.0,
            "the naive scan should cost hundreds of cycles, got {basic:.1}"
        );
        assert!(
            lut < 40.0,
            "the LUT path must be tens of cycles, got {lut:.1}"
        );
    }

    #[test]
    fn ablation_kernels_produce_valid_error_polys() {
        let ky = sampler();
        for f in [
            ky_sample_poly_basic as fn(&mut Machine, &KnuthYao, usize, u32) -> Vec<u32>,
            ky_sample_poly_hw,
            ky_sample_poly_clz,
        ] {
            let mut m = Machine::cortex_m4f(9);
            let poly = f(&mut m, &ky, 512, 7681);
            assert_eq!(poly.len(), 512);
            for &c in &poly {
                let centered = if c > 7681 / 2 {
                    c as i64 - 7681
                } else {
                    c as i64
                };
                assert!(centered.abs() < 55);
            }
        }
    }
}

//! Cycle-charged Knuth-Yao sampling and uniform polynomial generation.
//!
//! The Gaussian path reuses the *real* sampler from `rlwe-sampler` (so the
//! values are exactly the library's) and charges the machine along the way:
//! per-bit buffer management (§III-E), per-word TRNG reads, and a per-path
//! surcharge derived from the number of bits the walk consumed (a LUT1 hit
//! consumes exactly 9 bits, a LUT2 hit 14, anything longer fell through to
//! the bit scan — §III-B5).

use rlwe_sampler::random::BitSource;
use rlwe_sampler::KnuthYao;

use crate::machine::Machine;

/// Bit source that charges the machine for buffered-bit management and
/// rate-limited TRNG reads (the paper's sentinel-MSB register scheme).
struct ChargedBits<'m> {
    m: &'m mut Machine,
    register: u32,
    drawn: u64,
}

impl<'m> ChargedBits<'m> {
    fn new(m: &'m mut Machine) -> Self {
        Self {
            m,
            register: 1,
            drawn: 0,
        }
    }
}

impl BitSource for ChargedBits<'_> {
    fn take_bit(&mut self) -> u32 {
        if self.register == 1 {
            // Refill: TRNG read (possibly stalling) + sentinel or.
            self.register = self.m.trng_word() | 0x8000_0000;
            self.m.alu(1);
        }
        let bit = self.register & 1;
        self.register >>= 1;
        // One extract-and-shift per *group* of bits is charged in
        // take_bits; charge the lone-bit case here.
        self.drawn += 1;
        bit
    }

    fn take_bits(&mut self, k: u32) -> u32 {
        // One mask + one shift serves the whole group (`r & 255; r >> 8`).
        self.m.alu(2);
        let mut v = 0u32;
        for j in 0..k {
            v |= self.take_bit() << j;
        }
        v
    }

    fn bits_drawn(&self) -> u64 {
        self.drawn
    }
}

/// Sampling statistics reported alongside the polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Samples that resolved in the first lookup table (9 bits).
    pub lut1_hits: u64,
    /// Samples that resolved in the second lookup table (14 bits).
    pub lut2_hits: u64,
    /// Samples that fell through to the bit scan.
    pub scans: u64,
}

/// Samples an `n`-coefficient error polynomial with the two-LUT Knuth-Yao
/// sampler, charging the per-sample instruction sequence. Returns residues
/// modulo `q`.
pub fn ky_sample_poly(m: &mut Machine, ky: &KnuthYao, n: usize, q: u32) -> (Vec<u32>, SampleStats) {
    let mut stats = SampleStats {
        lut1_hits: 0,
        lut2_hits: 0,
        scans: 0,
    };
    let mut out = Vec::with_capacity(n);
    let mut bits = ChargedBits::new(m);
    for _ in 0..n {
        let before = bits.bits_drawn();
        let s = ky.sample_lut(&mut bits);
        let used = bits.bits_drawn() - before;
        // Per-take charges already accrued; add the path surcharge.
        let m = &mut *bits.m;
        m.call(); // sample() call + return
        m.mem(1); // LUT1 byte load
        m.alu(2); // msb test + branch decision
        m.branch();
        if used == 9 {
            stats.lut1_hits += 1;
        } else if used == 14 {
            stats.lut2_hits += 1;
            m.alu(2); // distance extraction, index assembly
            m.mem(1); // LUT2 byte load
            m.alu(2); // msb test
            m.branch();
        } else {
            stats.scans += 1;
            // Bit-scan fall-through: per consumed scan bit, one level of
            // d-doubling plus clz-driven column scanning.
            let scan_bits = used.saturating_sub(15);
            m.alu(2);
            m.mem(1);
            for _ in 0..scan_bits {
                m.alu(3); // d update, shift
                m.clz();
                m.mem(1); // column word
                m.branch();
            }
        }
        // Sign application and store into the polynomial buffer.
        m.alu(2); // conditional q - s
        m.mem(1); // halfword store (amortised packed store)
        m.loop_tick();
        out.push(s.to_zq(q));
    }
    (out, stats)
}

/// Generates a uniform polynomial for `ã`: one TRNG word per coefficient,
/// reduced modulo `q` with the hardware divider (no rejection loop, no
/// bias discussion — the straightforward microcontroller implementation).
///
/// This is the TRNG-bound part of key generation: back-to-back word reads
/// run at the generator's production period.
pub fn uniform_poly(m: &mut Machine, n: usize, q: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let w = m.trng_word();
        m.mulmod(); // reduce mod q via udiv/mls
        m.mem(1); // store (halfword, packed-amortised)
        m.loop_tick();
        out.push(w % q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use rlwe_sampler::ProbabilityMatrix;

    fn sampler() -> KnuthYao {
        KnuthYao::new(ProbabilityMatrix::paper_p1().unwrap()).unwrap()
    }

    #[test]
    fn per_sample_cost_near_paper_28_5() {
        // Paper: 28.5 cycles/sample average; 7 294 cycles per 256 samples.
        // Measure with the ideal TRNG (the paper's figure excludes
        // entropy-starvation stalls; see EXPERIMENTS.md).
        let ky = sampler();
        let mut m = Machine::with_model(CostModel::cortex_m4f_ideal_trng(), 3);
        let n = 100_000;
        let (_, stats) = ky_sample_poly(&mut m, &ky, n, 7681);
        let per_sample = m.cycles() as f64 / n as f64;
        assert!(
            (per_sample / 28.5 - 1.0).abs() < 0.25,
            "model {per_sample} cycles/sample vs paper 28.5"
        );
        // Hit-rate structure mirrors Fig. 2.
        let hit1 = stats.lut1_hits as f64 / n as f64;
        assert!((hit1 - 0.9727).abs() < 0.01, "LUT1 hit rate {hit1}");
    }

    #[test]
    fn sampled_polynomial_is_a_valid_error_poly() {
        let ky = sampler();
        let mut m = Machine::cortex_m4f(9);
        let (poly, _) = ky_sample_poly(&mut m, &ky, 256, 7681);
        assert_eq!(poly.len(), 256);
        for &c in &poly {
            let centered = if c > 7681 / 2 {
                c as i64 - 7681
            } else {
                c as i64
            };
            assert!(centered.abs() < 55, "coefficient {c} outside support");
        }
    }

    #[test]
    fn rate_limited_trng_adds_stalls_to_burst_sampling() {
        let ky = sampler();
        let mut ideal = Machine::with_model(CostModel::cortex_m4f_ideal_trng(), 3);
        ky_sample_poly(&mut ideal, &ky, 4096, 7681);
        let mut real = Machine::cortex_m4f(3);
        ky_sample_poly(&mut real, &ky, 4096, 7681);
        assert!(real.cycles() > ideal.cycles());
        assert!(real.trng_stall_cycles() > 0);
    }

    #[test]
    fn uniform_poly_is_trng_bound() {
        let mut m = Machine::cortex_m4f(5);
        let poly = uniform_poly(&mut m, 256, 7681);
        assert_eq!(poly.len(), 256);
        assert!(poly.iter().all(|&c| c < 7681));
        // One word per coefficient at a 140-cycle period dominates:
        let per_coeff = m.cycles() as f64 / 256.0;
        assert!(
            per_coeff >= 140.0,
            "uniform generation should be TRNG-bound, got {per_coeff}"
        );
    }
}

//! Flash and RAM accounting — the storage columns of the paper's Table II.
//!
//! RAM is computed exactly from the kernels' live buffers: every
//! polynomial is stored packed (two 13/14-bit coefficients per 32-bit
//! word ⇒ `2n` bytes), plus a small stack allowance. This model reproduces
//! the paper's RAM column *exactly* for all six rows, which is strong
//! evidence it is the accounting the authors used:
//!
//! | op | buffers | bytes (P1) | paper |
//! |---|---|---|---|
//! | key generation | ã, r₁→p̃, r₂ | 3·512 + 60 = 1 596 | 1 596 |
//! | encryption | e₁ e₂ e₃+m̄, c₁ c₂, ã p̃ (in place) | 6·512 + 56 = 3 128 | 3 128 |
//! | decryption | c₁, c₂, r̃₂, m′ | 4·512 + 52 = 2 100 | 2 100 |
//!
//! Flash is split into **tables** (computed exactly from our structures:
//! twiddle LUTs, trimmed probability matrix, DDG lookup tables) and
//! **code** (estimated from kernel instruction counts at ~2.4 bytes per
//! Thumb-2 instruction; the paper's column is linker-reported code size,
//! which we cannot measure without their binary).

use rlwe_core::{Params, RlweContext};

/// Which Table II row is being accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeOp {
    /// Key generation.
    KeyGen,
    /// Encryption.
    Encrypt,
    /// Decryption.
    Decrypt,
}

/// Bytes of one packed polynomial buffer (`n/2` words of 4 bytes).
pub fn poly_buffer_bytes(params: &Params) -> usize {
    2 * params.n()
}

/// Exact RAM requirement of a scheme operation: live packed polynomial
/// buffers plus the stack allowance of the paper's measurements.
pub fn ram_bytes(op: SchemeOp, params: &Params) -> usize {
    let poly = poly_buffer_bytes(params);
    match op {
        SchemeOp::KeyGen => 3 * poly + 60,
        SchemeOp::Encrypt => 6 * poly + 56,
        SchemeOp::Decrypt => 4 * poly + 52,
    }
}

/// Exact flash bytes of the precomputed constant tables.
///
/// * forward + inverse twiddle factors: `2n` halfwords;
/// * trimmed probability-matrix words (§III-B3);
/// * the two DDG lookup tables (§III-B5).
pub fn table_flash_bytes(ctx: &RlweContext) -> usize {
    let n = ctx.params().n();
    let twiddles = 2 * n * 2;
    let pmat_words = ctx.sampler().pmat().stored_words() * 4;
    let luts = ctx.sampler().lut1_len() + ctx.sampler().lut2_len();
    twiddles + pmat_words + luts
}

/// Estimated code size of a scheme operation in bytes.
///
/// Derived from hand-counted instruction estimates of each kernel's loop
/// bodies and prologue (≈ 2.4 B per Thumb-2 instruction). These are
/// *estimates* — the paper's numbers come from its toolchain's linker map
/// — but the ordering and rough magnitudes line up (decryption is by far
/// the smallest routine in both).
pub fn code_bytes_estimate(op: SchemeOp) -> usize {
    // Per-routine instruction estimates.
    const NTT: usize = 180; // packed forward NTT
    const NTT3: usize = 230; // fused triple NTT
    const INTT: usize = 200; // inverse + scaling pass
    const SAMPLER: usize = 150; // two-LUT Knuth-Yao + bit buffer
    const UNIFORM: usize = 35;
    const POINTWISE: usize = 45; // each fused pointwise loop
    const CODEC: usize = 40; // message encode / decode
    const GLUE: usize = 45; // per-operation driver
    let insns = match op {
        SchemeOp::KeyGen => UNIFORM + SAMPLER + NTT + 2 * POINTWISE + GLUE,
        SchemeOp::Encrypt => SAMPLER + CODEC + NTT3 + 2 * POINTWISE + GLUE,
        SchemeOp::Decrypt => POINTWISE + INTT + CODEC + GLUE,
    };
    (insns as f64 * 2.4) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlwe_core::ParamSet;

    #[test]
    fn ram_matches_paper_exactly_for_all_six_rows() {
        let p1 = ParamSet::P1.params();
        let p2 = ParamSet::P2.params();
        assert_eq!(ram_bytes(SchemeOp::KeyGen, &p1), 1596);
        assert_eq!(ram_bytes(SchemeOp::Encrypt, &p1), 3128);
        assert_eq!(ram_bytes(SchemeOp::Decrypt, &p1), 2100);
        assert_eq!(ram_bytes(SchemeOp::KeyGen, &p2), 3132);
        assert_eq!(ram_bytes(SchemeOp::Encrypt, &p2), 6200);
        assert_eq!(ram_bytes(SchemeOp::Decrypt, &p2), 4148);
    }

    #[test]
    fn table_flash_is_about_two_kilobytes_for_p1() {
        let ctx = RlweContext::new(ParamSet::P1).unwrap();
        let bytes = table_flash_bytes(&ctx);
        // 1024 (twiddles) + ~720 (pmat) + 480 (LUTs) ≈ 2.2 KB.
        assert!((1800..2800).contains(&bytes), "table flash = {bytes}");
    }

    #[test]
    fn code_estimates_follow_the_paper_ordering() {
        let kg = code_bytes_estimate(SchemeOp::KeyGen);
        let enc = code_bytes_estimate(SchemeOp::Encrypt);
        let dec = code_bytes_estimate(SchemeOp::Decrypt);
        // Paper: 1552 / 1506 / 516 — decryption is by far the smallest.
        assert!(dec < kg && dec < enc);
        assert!(dec < 1000);
        assert!((800..2000).contains(&kg));
        assert!((800..2000).contains(&enc));
    }
}

//! ARM Cortex-M4F cost model — regenerating the paper's cycle counts.
//!
//! The paper's evaluation (Tables I and II) consists of `DWT_CYCCNT` cycle
//! measurements on an STM32F407. Without that hardware, this crate rebuilds
//! the measurement as a **transparent instruction-category cost model**:
//! every kernel is the real algorithm (producing real, cross-checked
//! values) written against a [`Machine`] that charges each conceptual
//! Cortex-M4F instruction as it executes:
//!
//! * memory access (load *or* store): 2 cycles — the paper's own statement
//!   in §III-C, and the reason coefficients are packed two per word;
//! * ALU op / multiply / `clz`: 1 cycle;
//! * hardware divide (`udiv`): 2–12 cycles — modular reduction is modelled
//!   with `mul + udiv + mls`, matching the paper's emphasis on the
//!   division instruction (§III-A);
//! * taken branch: pipeline refill;
//! * function call/return overhead;
//! * TRNG: one 32-bit word per 140 CPU cycles (40 ticks of the 48 MHz
//!   TRNG clock at a 168 MHz core clock), produced in the background —
//!   reads stall only when the consumer outpaces it (§III-E).
//!
//! The model is calibrated **once** (the `udiv` latency within its
//! documented 2–12 range); every other number — inverse NTT, parallel NTT,
//! sampling, key generation, encryption, decryption, the packed-layout
//! savings, the 8.3% parallel-NTT gain — *emerges* from the kernel
//! structure. `EXPERIMENTS.md` reports model vs. paper for every row.
//!
//! # Example
//!
//! ```
//! use rlwe_core::{ParamSet, RlweContext};
//! use rlwe_m4sim::{kernels, Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = RlweContext::new(ParamSet::P1)?;
//! let mut m = Machine::cortex_m4f(1);
//! let mut poly: Vec<u32> = (0..256).map(|i| (i * 31) % 7681).collect();
//! kernels::ntt_forward_packed(&mut m, ctx.plan(), &mut poly);
//! // The model lands in the paper's ballpark (31 583 cycles measured).
//! assert!((25_000..40_000).contains(&m.cycles()));
//! // And computes the *real* transform:
//! assert_eq!(poly, ctx.plan().forward_copy(
//!     &(0..256u32).map(|i| (i * 31) % 7681).collect::<Vec<_>>()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod machine;

pub mod footprint;
pub mod kernels;
pub mod report;

pub use cost::CostModel;
pub use machine::Machine;

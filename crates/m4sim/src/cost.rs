//! Instruction-category cycle costs.

/// Per-instruction-category cycle costs for the modelled core.
///
/// Defaults follow the ARM Cortex-M4 Technical Reference Manual and the
/// paper's own statements (§III-A: "single-cycle 32-bit multiplications…
/// a division instruction that requires between 2–12 cycles"; §III-C:
/// "a memory access requires 2 cycles").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Data-processing instruction (add/sub/xor/shift/mov/cmp).
    pub alu: u64,
    /// 32-bit multiply (`mul`, `mla`, `umull` class — single-cycle on M4).
    pub mul: u64,
    /// Memory access, load or store, any width (§III-C: 2 cycles).
    pub mem: u64,
    /// Count-leading-zeros.
    pub clz: u64,
    /// Hardware unsigned divide; 2–12 depending on operands. Modular
    /// reduction divides a 26-bit product by a 13/14-bit constant, which
    /// sits at the slow end of the range.
    pub udiv: u64,
    /// Taken branch (pipeline refill).
    pub branch: u64,
    /// Call + return overhead of a small leaf function (bl, push, pop, bx).
    pub call: u64,
    /// TRNG word period in CPU cycles (40 ticks @48 MHz seen from 168 MHz).
    pub trng_period: u64,
    /// CPU-side cost of one TRNG read (status poll + data register load).
    pub trng_read: u64,
}

impl CostModel {
    /// The calibrated Cortex-M4F model used throughout the reproduction.
    pub fn cortex_m4f() -> Self {
        Self {
            alu: 1,
            mul: 1,
            mem: 2,
            clz: 1,
            udiv: 12,
            branch: 2,
            call: 8,
            trng_period: 140,
            trng_read: 6,
        }
    }

    /// An idealised TRNG variant (no rate limit): isolates algorithmic
    /// cost from entropy-starvation stalls, the way a benchmark loop that
    /// never drains the TRNG would measure it.
    pub fn cortex_m4f_ideal_trng() -> Self {
        Self {
            trng_period: 0,
            ..Self::cortex_m4f()
        }
    }

    /// Cycles for one modular multiplication (`mul` + `udiv` + `mls`),
    /// the reduction strategy the M4F's hardware divider makes attractive.
    pub fn mulmod(&self) -> u64 {
        self.mul + self.udiv + self.mul
    }

    /// Cycles for a modular addition (add + compare + conditional
    /// subtract via IT block).
    pub fn modadd(&self) -> u64 {
        3 * self.alu
    }

    /// Cycles for a modular subtraction.
    pub fn modsub(&self) -> u64 {
        3 * self.alu
    }

    /// Per-iteration loop bookkeeping: index update, bound compare,
    /// backward branch.
    pub fn loop_overhead(&self) -> u64 {
        2 * self.alu + self.branch
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cortex_m4f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_statements() {
        let c = CostModel::cortex_m4f();
        assert_eq!(c.mem, 2, "paper: memory access requires 2 cycles");
        assert_eq!(c.mul, 1, "paper: single-cycle 32-bit multiplication");
        assert!(
            (2..=12).contains(&c.udiv),
            "paper: division takes 2-12 cycles"
        );
        assert_eq!(c.trng_period, 140, "40 ticks @48MHz = 140 cycles @168MHz");
    }

    #[test]
    fn composite_costs() {
        let c = CostModel::cortex_m4f();
        assert_eq!(c.mulmod(), 14);
        assert_eq!(c.modadd(), 3);
        assert_eq!(c.loop_overhead(), 4);
    }
}

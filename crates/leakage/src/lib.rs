//! Leakage-regression harness for the constant-time decapsulation path.
//!
//! The paper's §V defers constant-time execution to future work; this
//! crate is where the workspace *proves* it caught up, two ways:
//!
//! 1. **Deterministic operation-count invariance** (`tests/invariance.rs`,
//!    runs in CI): the constant-time CDT sampler must draw exactly 129
//!    bits and execute exactly one full-table scan per sample
//!    ([`rlwe_sampler::ct::CtCdtSampler::sample_traced`]), and
//!    `decapsulate_cca` must perform an identical sequence of hash calls
//!    whether the ciphertext is accepted or implicitly rejected
//!    ([`rlwe_hash::probe`]). These checks are exact — a regression fails
//!    the test suite, not a statistics dashboard.
//! 2. **A dudect-style Welch's t-test** (`benches/leakage.rs`, wall-clock,
//!    *not* a CI gate): decapsulation timings are collected for two
//!    randomly interleaved input classes and compared with [`TTest`]; |t|
//!    beyond [`T_THRESHOLD`] over a large sample means the classes are
//!    timing-distinguishable. Two [`Contrast`]s are measured: the classic
//!    fixed-vs-random design (sensitive to *any* input dependence,
//!    including cache effects of the public ciphertext — expect it to
//!    flag on commodity CPUs) and accept-vs-reject over fresh
//!    ciphertexts in both classes, which isolates the secret decision
//!    the branch-free rewrite removed.
//!
//! The split matters: wall-clock measurements are noisy and
//! machine-dependent, so they stay out of CI; the operation-count checks
//! are the deterministic shadow of the same property and gate every
//! change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rlwe_core::drbg::HashDrbg;
use rlwe_core::{Ciphertext, ParamSet, PolyScratch, PublicKey, RlweContext, RlweError, SecretKey};
use rlwe_sampler::random::{SplitMix64, WordSource};
use std::time::Instant;

/// The dudect decision threshold: |t| above this over a large measurement
/// set indicates a timing distinguisher between the input classes.
pub const T_THRESHOLD: f64 = 4.5;

/// Welford-style online accumulator for one measurement class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    n: f64,
    mean: f64,
    m2: f64,
}

impl ClassStats {
    /// Adds one measurement.
    pub fn push(&mut self, x: f64) {
        self.n += 1.0;
        let delta = x - self.mean;
        self.mean += delta / self.n;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of measurements seen.
    pub fn count(&self) -> u64 {
        self.n as u64
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 until two measurements arrive).
    pub fn variance(&self) -> f64 {
        if self.n < 2.0 {
            0.0
        } else {
            self.m2 / (self.n - 1.0)
        }
    }
}

/// A two-class Welch's t-test over interleaved timing measurements.
///
/// # Example
///
/// ```
/// use rlwe_leakage::TTest;
///
/// let mut t = TTest::new();
/// for i in 0..1000 {
///     t.push(0, 100.0 + (i % 7) as f64);
///     t.push(1, 100.0 + ((i + 3) % 7) as f64);
/// }
/// assert!(t.t_statistic().abs() < 4.5, "same distribution, no leak");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TTest {
    classes: [ClassStats; 2],
}

impl TTest {
    /// An empty test.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a measurement for `class` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics on a class index other than 0 or 1.
    pub fn push(&mut self, class: usize, x: f64) {
        self.classes[class].push(x);
    }

    /// Per-class statistics.
    pub fn class(&self, class: usize) -> &ClassStats {
        &self.classes[class]
    }

    /// Welch's t statistic between the two classes (0 until both classes
    /// have at least two measurements).
    ///
    /// Degenerate zero-variance classes (a quantized timer can produce
    /// them) are handled by the sign of the mean difference: identical
    /// constant classes give 0, *different* constant classes give a
    /// signed infinity — the strongest possible distinguisher, not a
    /// false "no leak".
    pub fn t_statistic(&self) -> f64 {
        let [a, b] = &self.classes;
        if a.n < 2.0 || b.n < 2.0 {
            return 0.0;
        }
        let diff = a.mean() - b.mean();
        let se2 = a.variance() / a.n + b.variance() / b.n;
        if se2 <= 0.0 {
            return if diff == 0.0 {
                0.0
            } else {
                f64::INFINITY.copysign(diff)
            };
        }
        diff / se2.sqrt()
    }

    /// Whether the statistic crosses the dudect threshold.
    pub fn leaks(&self) -> bool {
        self.t_statistic().abs() > T_THRESHOLD
    }
}

/// The outcome of one fixed-vs-random measurement run.
#[derive(Debug, Clone, Copy)]
pub struct TTestReport {
    /// Welch's t statistic (class-0 mean minus class-1 mean).
    pub t: f64,
    /// Measurements in class 0 (accepting ciphertexts).
    pub accept_count: u64,
    /// Measurements in class 1 (rejecting ciphertexts).
    pub reject_count: u64,
    /// Mean decapsulation time per class, in nanoseconds.
    pub means_ns: [f64; 2],
}

impl TTestReport {
    /// Whether |t| crosses [`T_THRESHOLD`].
    pub fn leaks(&self) -> bool {
        self.t.abs() > T_THRESHOLD
    }
}

impl std::fmt::Display for TTestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|t| = {:.2} ({} accept / {} reject, means {:.0} ns vs {:.0} ns) -> {}",
            self.t.abs(),
            self.accept_count,
            self.reject_count,
            self.means_ns[0],
            self.means_ns[1],
            if self.leaks() {
                "DISTINGUISHABLE"
            } else {
                "indistinguishable"
            }
        )
    }
}

/// The first single-bit maul of `ct` whose wire form still parses — the
/// canonical way the harness (and its tests) produce a ciphertext that
/// takes the implicit-rejection path. Flips one bit at a time from wire
/// offset 2 (past magic + param id, which structural checks would catch
/// before the interesting path) and returns the first candidate that
/// survives the coefficient-range check on parse; a maul can only
/// collide with a valid re-encryption with negligible probability.
///
/// Returns `None` only if no single-bit flip parses (cannot happen for
/// the named parameter sets' packed encodings).
pub fn first_parsing_maul(ct: &Ciphertext) -> Option<Ciphertext> {
    let wire = ct.to_bytes().ok()?;
    (2..wire.len()).find_map(|i| {
        let mut w = wire.clone();
        w[i] ^= 1;
        Ciphertext::from_bytes(&w).ok()
    })
}

/// Which two decapsulation input classes a run contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contrast {
    /// Classic dudect: one fixed accepting ciphertext vs. fresh rejecting
    /// ones. Maximally sensitive — it flags *any* input-data dependence,
    /// including cache and branch-predictor effects of the (public)
    /// ciphertext bytes themselves, which general-purpose CPUs exhibit
    /// even for code with a fixed operation count. Expect this to be
    /// DISTINGUISHABLE on commodity hardware for every rung.
    FixedVsRandom,
    /// Fresh accepting vs. fresh rejecting ciphertexts: both classes vary
    /// the public input identically, so the statistic isolates the one
    /// thing that differs — the *secret* accept/reject decision inside
    /// `decapsulate_cca`. This is the contrast the branch-free rewrite
    /// must keep indistinguishable.
    AcceptVsReject,
}

/// The dudect-style fixture: two classes of ciphertexts straddling the
/// secret decision inside `decapsulate_cca` (see [`Contrast`] for the two
/// class designs), decapsulated in random interleaving under a wall
/// clock.
pub struct DecapClasses {
    ctx: RlweContext,
    pk: PublicKey,
    sk: SecretKey,
    /// Class-0 ciphertexts: all verified *accepting* (length 1 for
    /// [`Contrast::FixedVsRandom`]).
    accept_pool: Vec<Ciphertext>,
    /// Class-1 ciphertexts: all mauled, implicitly *rejecting*.
    reject_pool: Vec<Ciphertext>,
    scratch: PolyScratch,
    selector: SplitMix64,
}

impl DecapClasses {
    /// How many pre-generated ciphertexts a varied class cycles through
    /// (generation stays outside the timed region).
    pub const RANDOM_POOL: usize = 64;

    /// Builds the fixture: deterministic keypair from `seed`, class-0
    /// ciphertexts verified to take the accept path, and a pool of mauled
    /// ciphertexts that take the implicit-rejection path.
    ///
    /// # Errors
    ///
    /// Propagates scheme errors (cannot happen for named parameter sets).
    pub fn new(ctx: RlweContext, seed: [u8; 32], contrast: Contrast) -> Result<Self, RlweError> {
        let mut rng = HashDrbg::new(seed);
        // ct-allow(harness setup; encap errors are structural, not secret-dependent)
        let (pk, sk) = ctx.generate_keypair(&mut rng)?;
        let accept_target = match contrast {
            Contrast::FixedVsRandom => 1,
            Contrast::AcceptVsReject => Self::RANDOM_POOL,
        };
        // The scheme fails to decrypt with ~1% probability; retry until
        // every class-0 ciphertext provably round-trips (accept path).
        let mut accept_pool = Vec::with_capacity(accept_target);
        while accept_pool.len() < accept_target {
            // ct-allow(leakage harness deliberately classifies decap outcomes to measure them)
            let (ct, k1) = ctx.encapsulate_cca(&pk, &mut rng)?;
            // ct-allow(leakage harness deliberately classifies decap outcomes to measure them)
            let k2 = ctx.decapsulate_cca(&sk, &pk, &ct)?;
            // ct-allow(leakage harness deliberately classifies decap outcomes to measure them)
            if k1 == k2 {
                accept_pool.push(ct);
            }
        }
        let mut reject_pool = Vec::with_capacity(Self::RANDOM_POOL);
        while reject_pool.len() < Self::RANDOM_POOL {
            // ct-allow(leakage harness deliberately classifies decap outcomes to measure them)
            let (ct, _) = ctx.encapsulate_cca(&pk, &mut rng)?;
            // ct-allow(leakage harness deliberately classifies decap outcomes to measure them)
            if let Some(mauled) = first_parsing_maul(&ct) {
                reject_pool.push(mauled);
            }
        }
        let scratch = ctx.new_scratch();
        Ok(Self {
            ctx,
            pk,
            sk,
            accept_pool,
            reject_pool,
            scratch,
            selector: SplitMix64::new(u64::from_le_bytes(
                seed[..8].try_into().expect("8 seed bytes"),
            )),
        })
    }

    /// Convenience constructor from a parameter set with the default
    /// (variable-time) sampler rung.
    ///
    /// # Errors
    ///
    /// See [`DecapClasses::new`].
    pub fn for_set(set: ParamSet, seed: [u8; 32], contrast: Contrast) -> Result<Self, RlweError> {
        Self::new(RlweContext::new(set)?, seed, contrast)
    }

    /// The context under test.
    pub fn context(&self) -> &RlweContext {
        &self.ctx
    }

    /// Runs `iterations` randomly interleaved decapsulations — plus an
    /// unmeasured warm-up of `iterations/16` passes, each decapsulating
    /// once per class (so `iterations/8` warm-up decapsulations total) —
    /// and reports the t statistic.
    pub fn measure(&mut self, iterations: usize) -> TTestReport {
        for _ in 0..(iterations / 16).max(8) {
            self.decap_once(0);
            self.decap_once(1);
        }
        let mut ttest = TTest::new();
        let mut pending = 0u32;
        let mut pending_bits = 0;
        for _ in 0..iterations {
            if pending_bits == 0 {
                pending = self.selector.next_word();
                pending_bits = 32;
            }
            let class = (pending & 1) as usize;
            pending >>= 1;
            pending_bits -= 1;
            let ns = self.decap_once(class);
            ttest.push(class, ns);
        }
        TTestReport {
            t: ttest.t_statistic(),
            accept_count: ttest.class(0).count(),
            reject_count: ttest.class(1).count(),
            means_ns: [ttest.class(0).mean(), ttest.class(1).mean()],
        }
    }

    /// One timed decapsulation for `class`; returns nanoseconds.
    fn decap_once(&mut self, class: usize) -> f64 {
        let pool = if class == 0 {
            &self.accept_pool
        } else {
            &self.reject_pool
        };
        let ct = &pool[(self.selector.next_word() as usize) % pool.len()];
        let start = Instant::now();
        let ss = self
            .ctx
            .decapsulate_cca_with_scratch(&self.sk, &self.pk, ct, &mut self.scratch)
            .expect("structural decap errors are impossible here");
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(ss);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_t_is_zero_for_identical_streams() {
        let mut t = TTest::new();
        for i in 0..500 {
            let v = (i * 37 % 101) as f64;
            t.push(0, v);
            t.push(1, v);
        }
        assert_eq!(t.t_statistic(), 0.0);
        assert!(!t.leaks());
    }

    #[test]
    fn welch_t_flags_a_shifted_mean() {
        let mut t = TTest::new();
        for i in 0..2000 {
            let noise = (i * 37 % 101) as f64;
            t.push(0, 1000.0 + noise);
            t.push(1, 1100.0 + noise); // 10% systematic shift
        }
        assert!(t.leaks(), "t = {}", t.t_statistic());
        // Class 0 mean is below class 1, so t is negative.
        assert!(t.t_statistic() < -T_THRESHOLD);
    }

    #[test]
    fn welch_t_handles_degenerate_inputs() {
        let mut t = TTest::new();
        assert_eq!(t.t_statistic(), 0.0);
        t.push(0, 5.0);
        t.push(1, 9.0);
        assert_eq!(t.t_statistic(), 0.0, "one sample per class: undefined");
        // Zero-variance classes with equal means: still well-defined 0.
        let mut z = TTest::new();
        for _ in 0..10 {
            z.push(0, 7.0);
            z.push(1, 7.0);
        }
        assert_eq!(z.t_statistic(), 0.0);
        // Zero-variance classes with *different* means — e.g. a quantized
        // timer measuring a constant timing gap — are a perfect
        // distinguisher and must flag, not report 0.
        let mut c = TTest::new();
        for _ in 0..10 {
            c.push(0, 1000.0);
            c.push(1, 1100.0);
        }
        assert_eq!(c.t_statistic(), f64::NEG_INFINITY);
        assert!(c.leaks());
    }

    #[test]
    fn class_stats_match_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = ClassStats::default();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of the classic example set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn fixture_classes_take_the_intended_paths() {
        let mut h =
            DecapClasses::for_set(ParamSet::P1, [5u8; 32], Contrast::FixedVsRandom).unwrap();
        assert_eq!(h.accept_pool.len(), 1, "fixed class holds one ciphertext");
        // The fixed ciphertext accepts: decapsulating twice is stable and
        // differs from every rejecting-pool result.
        let fixed_key = h
            .ctx
            .decapsulate_cca(&h.sk, &h.pk, &h.accept_pool[0])
            .unwrap();
        for ct in &h.reject_pool[..4] {
            let k = h.ctx.decapsulate_cca(&h.sk, &h.pk, ct).unwrap();
            assert_ne!(fixed_key.as_bytes(), k.as_bytes());
        }
        // A short measurement run completes and counts every iteration.
        let report = h.measure(64);
        assert_eq!(report.accept_count + report.reject_count, 64);
    }

    #[test]
    fn accept_vs_reject_fixture_fills_both_pools() {
        let h = DecapClasses::for_set(ParamSet::P1, [6u8; 32], Contrast::AcceptVsReject).unwrap();
        assert_eq!(h.accept_pool.len(), DecapClasses::RANDOM_POOL);
        assert_eq!(h.reject_pool.len(), DecapClasses::RANDOM_POOL);
        // Spot-check one ciphertext per class really takes its path.
        let k_accept = h
            .ctx
            .decapsulate_cca(&h.sk, &h.pk, &h.accept_pool[7])
            .unwrap();
        let k_again = h
            .ctx
            .decapsulate_cca(&h.sk, &h.pk, &h.accept_pool[7])
            .unwrap();
        assert_eq!(k_accept, k_again);
        let k_reject = h
            .ctx
            .decapsulate_cca(&h.sk, &h.pk, &h.reject_pool[7])
            .unwrap();
        assert_ne!(k_accept.as_bytes(), k_reject.as_bytes());
    }
}

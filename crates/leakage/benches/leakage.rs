//! Dudect-style wall-clock leakage bench over `decapsulate_cca`, run for
//! both the default variable-time sampler rung and the constant-time
//! CtCdt rung, under both class designs:
//!
//! * `fixed_vs_random` — the classic dudect contrast (one fixed accepting
//!   ciphertext vs. fresh rejecting ones). Sensitive to *any* input-data
//!   dependence, including cache/branch-predictor effects of the public
//!   ciphertext bytes; expect DISTINGUISHABLE on commodity CPUs for
//!   every rung. Useful as a ceiling: it shows what a maximally powerful
//!   local distinguisher sees.
//! * `accept_vs_reject` — fresh ciphertexts in both classes, differing
//!   only in whether the FO re-encryption check passes. This isolates the
//!   *secret* decision; the branch-free decapsulation must keep it
//!   indistinguishable.
//!
//! Modes (mirroring the criterion shim's convention):
//!
//! * `cargo bench -p rlwe-leakage` passes `--bench`: full measurement run
//!   (~100k interleaved decapsulations per configuration) with verdicts
//!   against the dudect |t| < 4.5 threshold. Wall-clock verdicts are
//!   machine-dependent, so this reports; it does not set an exit code.
//! * `cargo test --benches` (CI's bench smoke step) omits `--bench`:
//!   single-iteration mode — the whole pipeline (fixture construction,
//!   class interleaving, t accumulation, report formatting) runs once
//!   with a few hundred samples so CI exercises every code path in
//!   seconds without gating on timing noise. The deterministic gate for
//!   the same property is `tests/invariance.rs`.

use rlwe_core::{ParamSet, RlweContext, SamplerKind};
use rlwe_leakage::{Contrast, DecapClasses};

fn run(rung_label: &str, kind: SamplerKind, contrast: Contrast, iterations: usize) {
    let ctx = RlweContext::builder(ParamSet::P1)
        .sampler(kind)
        .build()
        .expect("P1 context");
    let mut harness = DecapClasses::new(ctx, [0x5Eu8; 32], contrast).expect("fixture");
    let report = harness.measure(iterations);
    let contrast_label = match contrast {
        Contrast::FixedVsRandom => "fixed_vs_random",
        Contrast::AcceptVsReject => "accept_vs_reject",
    };
    println!("decap_ttest/{rung_label}/{contrast_label}: {report}");
}

fn main() {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let iterations = if bench_mode { 100_000 } else { 400 };
    if !bench_mode {
        println!("leakage bench: single-iteration smoke mode ({iterations} samples; pass --bench for a full run)");
    }
    for (label, kind) in [
        ("lut_rung", SamplerKind::Lut),
        ("ctcdt_rung", SamplerKind::CtCdt),
    ] {
        for contrast in [Contrast::FixedVsRandom, Contrast::AcceptVsReject] {
            run(label, kind, contrast, iterations);
        }
    }
    if bench_mode {
        println!("note: fixed_vs_random flags public-input cache effects by design; accept_vs_reject is the secret-decision contrast. Verdicts are wall-clock statistics for this machine; the deterministic CI gate is crates/leakage/tests/invariance.rs");
    }
}

//! Dudect-style wall-clock leakage bench over `decapsulate_cca`, run for
//! both the default variable-time sampler rung and the constant-time
//! CtCdt rung, under both class designs:
//!
//! * `fixed_vs_random` — the classic dudect contrast (one fixed accepting
//!   ciphertext vs. fresh rejecting ones). Sensitive to *any* input-data
//!   dependence, including cache/branch-predictor effects of the public
//!   ciphertext bytes; expect DISTINGUISHABLE on commodity CPUs for
//!   every rung. Useful as a ceiling: it shows what a maximally powerful
//!   local distinguisher sees.
//! * `accept_vs_reject` — fresh ciphertexts in both classes, differing
//!   only in whether the FO re-encryption check passes. This isolates the
//!   *secret* decision; the branch-free decapsulation must keep it
//!   indistinguishable.
//!
//! Modes (mirroring the criterion shim's convention):
//!
//! * `cargo bench -p rlwe-leakage` passes `--bench`: full measurement run
//!   (~100k interleaved decapsulations per configuration) with verdicts
//!   against the dudect |t| < 4.5 threshold. Wall-clock verdicts are
//!   machine-dependent, so this reports; it does not set an exit code.
//! * `cargo test --benches` (CI's bench smoke step) omits `--bench`:
//!   single-iteration mode — the whole pipeline (fixture construction,
//!   class interleaving, t accumulation, report formatting) runs once
//!   with a few hundred samples so CI exercises every code path in
//!   seconds without gating on timing noise. The deterministic gate for
//!   the same property is `tests/invariance.rs`.

use rlwe_core::{ParamSet, RlweContext, SamplerKind};
use rlwe_leakage::{Contrast, DecapClasses, TTest};
use rlwe_sampler::ct::CtCdtSampler;
use rlwe_sampler::random::{BufferedBitSource, SplitMix64};
use rlwe_sampler::{ProbabilityMatrix, SignedSample};

fn run(rung_label: &str, kind: SamplerKind, contrast: Contrast, iterations: usize) {
    let ctx = RlweContext::builder(ParamSet::P1)
        .sampler(kind)
        .build()
        .expect("P1 context");
    let mut harness = DecapClasses::new(ctx, [0x5Eu8; 32], contrast).expect("fixture");
    let report = harness.measure(iterations);
    let contrast_label = match contrast {
        Contrast::FixedVsRandom => "fixed_vs_random",
        Contrast::AcceptVsReject => "accept_vs_reject",
    };
    println!("decap_ttest/{rung_label}/{contrast_label}: {report}");
}

/// Dudect arm for the vectorized CT-CDT rung itself, below the decap
/// pipeline: times `sample_block_into` (the 8-lane AVX2 table scan where
/// the host has it, the bit-identical scalar kernel otherwise) over a
/// P2-sized block, contrasting a fixed bit-stream seed against fresh
/// per-measurement seeds. The scan's operation count is input-
/// independent by construction (the deterministic gate is
/// `tests/invariance.rs`); this arm watches the wall clock for
/// data-dependent microarchitectural effects in the vector kernel.
fn run_vector_rung(iterations: usize) {
    let pmat = ProbabilityMatrix::paper_p2().expect("P2 probability matrix");
    let sampler = CtCdtSampler::new(&pmat);
    let mut block = vec![SignedSample::new(0, false); 512];
    let mut t = TTest::new();
    let mut reseed = SplitMix64::new(0xD0D0_CAFE);
    use rlwe_sampler::random::WordSource;
    for i in 0..iterations {
        for class in [0usize, 1] {
            let seed = if class == 0 {
                0x5EED_F1D0
            } else {
                u64::from(reseed.next_word()) << 32 | u64::from(reseed.next_word())
            };
            let mut bits = BufferedBitSource::buffered(SplitMix64::new(seed));
            let start = std::time::Instant::now();
            sampler.sample_block_into(&mut bits, &mut block);
            let elapsed = start.elapsed().as_nanos() as f64;
            // Interleave classes and skip the first pair (cold caches).
            if i > 0 {
                t.push(class, elapsed);
            }
        }
    }
    std::hint::black_box(&block);
    println!(
        "sampler_ttest/ctcdt_vector_rung/fixed_vs_random_seed: |t| = {:.2} \
         (means {:.0} ns vs {:.0} ns per 512-sample block) -> {}",
        t.t_statistic().abs(),
        t.class(0).mean(),
        t.class(1).mean(),
        if t.leaks() {
            "DISTINGUISHABLE"
        } else {
            "indistinguishable"
        }
    );
}

fn main() {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let iterations = if bench_mode { 100_000 } else { 400 };
    if !bench_mode {
        println!("leakage bench: single-iteration smoke mode ({iterations} samples; pass --bench for a full run)");
    }
    for (label, kind) in [
        ("lut_rung", SamplerKind::Lut),
        ("ctcdt_rung", SamplerKind::CtCdt),
    ] {
        for contrast in [Contrast::FixedVsRandom, Contrast::AcceptVsReject] {
            run(label, kind, contrast, iterations);
        }
    }
    run_vector_rung(iterations);
    if bench_mode {
        println!("note: fixed_vs_random flags public-input cache effects by design; accept_vs_reject is the secret-decision contrast. Verdicts are wall-clock statistics for this machine; the deterministic CI gate is crates/leakage/tests/invariance.rs");
    }
}

//! Deterministic operation-count invariance tests — the CI-gating shadow
//! of the wall-clock t-test bench.
//!
//! Four exact properties, no statistics involved:
//!
//! 1. The constant-time CDT sampler draws exactly 129 bits and executes
//!    exactly one full-table scan per sample, for every sample and both
//!    parameter sets.
//! 2. `decapsulate_cca` on a CtCdt-rung context performs an *identical*
//!    sequence of hash calls (count and per-call message lengths) whether
//!    the ciphertext is accepted or implicitly rejected.
//! 3. That hash-call shape is also invariant across different accepted
//!    ciphertexts — it depends on the parameter set alone.
//! 4. The NTT kernels execute an *identical* reduction-operation trace
//!    (butterflies, masked corrections, lazy twiddle multiplies, final
//!    normalizations — `NttPlan::forward_traced`/`inverse_traced`)
//!    regardless of the coefficient values, matching the closed forms in
//!    `rlwe_ntt::NttOpTrace` exactly. This is the transform-layer gate
//!    the lazy-butterfly rewrite added: zero conditional reductions left
//!    for an input value to modulate.

use rlwe_core::drbg::HashDrbg;
use rlwe_core::kem::SharedSecret;
use rlwe_core::{Ciphertext, ParamSet, RlweContext, SamplerKind};
use rlwe_hash::probe;
use rlwe_ntt::{AnyNttPlan, NttOpTrace, NttPlan};
use rlwe_sampler::ct::CtCdtSampler;
use rlwe_sampler::random::{BitSource, BufferedBitSource, SplitMix64};
use rlwe_sampler::ProbabilityMatrix;
use rlwe_zq::ReducerKind;

#[test]
fn ct_sampler_operation_counts_are_exactly_invariant() {
    for (pmat, rows) in [
        (ProbabilityMatrix::paper_p1().unwrap(), 55),
        (ProbabilityMatrix::paper_p2().unwrap(), 59),
    ] {
        let ct = CtCdtSampler::new(&pmat);
        assert_eq!(ct.comparisons_per_sample(), rows);
        let mut bits = BufferedBitSource::new(SplitMix64::new(0xC0DE));
        for i in 0..10_000 {
            let before = bits.bits_drawn();
            let (_, trace) = ct.sample_traced(&mut bits);
            assert_eq!(
                trace.bits_drawn,
                CtCdtSampler::BITS_PER_SAMPLE,
                "sample {i}: bit draws varied"
            );
            assert_eq!(
                bits.bits_drawn() - before,
                CtCdtSampler::BITS_PER_SAMPLE,
                "sample {i}: source-side count disagrees"
            );
            assert_eq!(
                trace.comparisons, rows as u64,
                "sample {i}: comparison count varied"
            );
        }
    }
}

#[test]
fn context_ct_rung_exposes_the_instrumented_sampler() {
    let ctx = RlweContext::builder(ParamSet::P1)
        .sampler(SamplerKind::CtCdt)
        .build()
        .unwrap();
    let ct = ctx.ct_sampler().expect("CtCdt context carries the sampler");
    let mut bits = BufferedBitSource::new(SplitMix64::new(9));
    let (_, trace) = ct.sample_traced(&mut bits);
    assert_eq!(trace.bits_drawn, 129);
    assert_eq!(trace.comparisons, ct.comparisons_per_sample() as u64);
    // The default rung carries none — the CT table is not paid for
    // unless selected.
    let default_ctx = RlweContext::new(ParamSet::P1).unwrap();
    assert!(default_ctx.ct_sampler().is_none());
}

/// An accepting `(ct, key)` pair plus one rejecting maul of it.
fn accept_and_reject_pair(
    ctx: &RlweContext,
    seed: [u8; 32],
) -> (
    rlwe_core::PublicKey,
    rlwe_core::SecretKey,
    Ciphertext,
    SharedSecret,
    Ciphertext,
) {
    let mut rng = HashDrbg::new(seed);
    let (pk, sk) = ctx.generate_keypair(&mut rng).unwrap();
    // Retry over the ~1% decryption-failure probability so the "valid"
    // ciphertext provably takes the accept path.
    let (ct, key) = loop {
        let (ct, k1) = ctx.encapsulate_cca(&pk, &mut rng).unwrap();
        let k2 = ctx.decapsulate_cca(&sk, &pk, &ct).unwrap();
        if k1 == k2 {
            break (ct, k1);
        }
    };
    let mauled = rlwe_leakage::first_parsing_maul(&ct).expect("some single-bit maul parses");
    (pk, sk, ct, key, mauled)
}

/// The value classes an NTT trace must be blind to: zeros, the all-(q−1)
/// worst case that saturates every lazy bound, and assorted pseudo-random
/// vectors.
fn ntt_input_classes(n: usize, q: u32) -> Vec<Vec<u32>> {
    let mut classes = vec![vec![0u32; n], vec![q - 1; n]];
    let mut rng = SplitMix64::new(0x17AC_E5EED);
    use rlwe_sampler::random::WordSource;
    for _ in 0..4 {
        classes.push((0..n).map(|_| rng.next_word() % q).collect());
    }
    // A single spike, and an alternating 0 / q−1 comb.
    let mut spike = vec![0u32; n];
    spike[n / 2] = q - 1;
    classes.push(spike);
    classes.push((0..n).map(|i| if i % 2 == 0 { 0 } else { q - 1 }).collect());
    classes
}

#[test]
fn ntt_reduction_op_trace_is_value_independent_and_matches_closed_form() {
    // The transform-layer analogue of the sampler's exact bit-draw gate:
    // every input class must produce the *same* operation trace, equal to
    // the closed-form count — a conditional reduction anywhere in the
    // butterflies would break the equality for some class.
    for (set_label, n, q) in [("P1", 256usize, 7681u32), ("P2", 512, 12289)] {
        let plan = NttPlan::new(n, q).unwrap();
        let expected_fwd = NttOpTrace::expected_forward(n);
        let expected_inv = NttOpTrace::expected_inverse(n);
        for (class, input) in ntt_input_classes(n, q).into_iter().enumerate() {
            let mut a = input.clone();
            let fwd = plan.forward_traced(&mut a);
            assert_eq!(
                fwd, expected_fwd,
                "{set_label}: forward trace varied on input class {class}"
            );
            // The traced kernel is the real kernel: outputs must be
            // bit-identical to the untraced entry point.
            assert_eq!(a, plan.forward_copy(&input), "{set_label} class {class}");

            let inv = plan.inverse_traced(&mut a);
            assert_eq!(
                inv, expected_inv,
                "{set_label}: inverse trace varied on input class {class}"
            );
            assert_eq!(a, input, "{set_label}: round trip broke on class {class}");
        }
    }
}

#[test]
fn specialized_plans_keep_the_pinned_reduction_op_traces() {
    // The monomorphized special-prime plans must execute *exactly* the
    // same reduction-op structure as the generic plan — the same closed
    // forms, on every adversarial input class. Specialization changes
    // how one masked correction is computed (shift-add fold vs second
    // conditional subtraction inside a single `normalization` event),
    // never how many reduction events run or whether an input value can
    // modulate them.
    for (set_label, n, q) in [("P1", 256usize, 7681u32), ("P2", 512, 12289)] {
        let plan = AnyNttPlan::new(n, q).unwrap();
        // Guard the guard: these must actually be the specialized plans.
        assert_ne!(
            plan.kind(),
            ReducerKind::Barrett,
            "{set_label}: dispatch fell back to the generic reducer"
        );
        let generic = NttPlan::new(n, q).unwrap();
        let expected_fwd = NttOpTrace::expected_forward(n);
        let expected_inv = NttOpTrace::expected_inverse(n);
        for (class, input) in ntt_input_classes(n, q).into_iter().enumerate() {
            let mut a = input.clone();
            let fwd = plan.forward_traced(&mut a);
            assert_eq!(
                fwd, expected_fwd,
                "{set_label}: specialized forward trace varied on input class {class}"
            );
            // Same trace *and* same bits as the generic plan.
            assert_eq!(
                a,
                generic.forward_copy(&input),
                "{set_label}: specialized forward output diverged on class {class}"
            );
            let inv = plan.inverse_traced(&mut a);
            assert_eq!(
                inv, expected_inv,
                "{set_label}: specialized inverse trace varied on input class {class}"
            );
            assert_eq!(
                a, input,
                "{set_label}: specialized round trip broke on class {class}"
            );
        }
    }
}

#[test]
fn avx2_backend_is_bit_identical_to_the_traced_kernel_on_every_input_class() {
    // The vector backend has no op trace of its own — its leakage story
    // is *bit-identity by construction*: every AVX2 primitive mirrors a
    // branch-free scalar primitive (masked corrections, lazy Shoup
    // multiplies), so the gate is that on every adversarial input class
    // the vector outputs equal the traced scalar kernel's outputs, while
    // that kernel keeps its pinned closed-form trace. A data-dependent
    // shortcut anywhere in the vector path would break the equality for
    // some class.
    for (set_label, n, q) in [("P1", 256usize, 7681u32), ("P2", 512, 12289)] {
        let plan = AnyNttPlan::new(n, q).unwrap();
        let expected_fwd = NttOpTrace::expected_forward(n);
        for (class, input) in ntt_input_classes(n, q).into_iter().enumerate() {
            // Scalar traced kernel: the already-gated ground truth.
            let mut scalar = input.clone();
            let trace = plan.forward_traced(&mut scalar);
            assert_eq!(
                trace, expected_fwd,
                "{set_label}: scalar trace varied on class {class}"
            );
            // Single-polynomial vector path.
            let mut vec_out = input.clone();
            plan.forward_avx2(&mut vec_out);
            assert_eq!(
                vec_out, scalar,
                "{set_label}: avx2 forward diverged on class {class}"
            );
            plan.inverse_avx2(&mut vec_out);
            assert_eq!(
                vec_out, input,
                "{set_label}: avx2 round trip broke on class {class}"
            );
            // Interleaved eight-lane path, same class in every lane —
            // lane coupling would show up as cross-lane divergence.
            let refs: Vec<&[u32]> = (0..8).map(|_| input.as_slice()).collect();
            let mut buf = vec![0u32; 8 * n];
            rlwe_ntt::avx2::interleave8_into(&refs, n, &mut buf);
            plan.forward_interleaved8(&mut buf);
            let mut lane = vec![0u32; n];
            for k in 0..8 {
                rlwe_ntt::avx2::deinterleave8_lane(&buf, k, &mut lane);
                assert_eq!(
                    lane, scalar,
                    "{set_label}: interleaved lane {k} diverged on class {class}"
                );
            }
        }
    }
}

/// Word-source classes the vectorized CT-CDT scan must be blind to:
/// all-zero words (every comparison u < c), all-one words (u maximal),
/// patterned extremes straddling the AVX2 kernel's sign-bias boundary,
/// an alternating min/max comb, and assorted pseudo-random streams.
fn sampler_word_classes() -> Vec<(&'static str, WordClass)> {
    vec![
        ("zeros", WordClass::Const(0)),
        ("ones", WordClass::Const(u32::MAX)),
        ("sign_bias_edge", WordClass::Const(0x8000_0000)),
        ("below_bias", WordClass::Const(0x7FFF_FFFF)),
        ("comb", WordClass::Alternating(0, u32::MAX)),
        ("rand_a", WordClass::Split(SplitMix64::new(0xA11CE))),
        ("rand_b", WordClass::Split(SplitMix64::new(0xB0B))),
        ("rand_c", WordClass::Split(SplitMix64::new(0x5EED_CAFE))),
    ]
}

/// A cloneable word source for the adversarial classes above.
#[derive(Clone)]
enum WordClass {
    Const(u32),
    Alternating(u32, u32),
    Split(SplitMix64),
}

impl rlwe_sampler::random::WordSource for WordClass {
    fn next_word(&mut self) -> u32 {
        match self {
            WordClass::Const(w) => *w,
            WordClass::Alternating(a, b) => {
                let w = *a;
                std::mem::swap(a, b);
                w
            }
            WordClass::Split(rng) => rng.next_word(),
        }
    }
}

#[test]
fn vectorized_ct_cdt_is_bit_identical_to_the_traced_scalar_kernel() {
    // The sampler-layer analogue of the NTT gate above: the 8-lane table
    // scan (AVX2 where the host has it, the shared scalar kernel
    // otherwise) has no op trace of its own — its leakage story is
    // bit-identity with `sample_traced`, whose 129-bit /
    // full-table-scan trace the first test in this file pins exactly.
    // Any data-dependent shortcut in the vector path (an early-exit scan,
    // a lane-coupled compare, a bias error at the u128 limb boundary)
    // breaks the equality on one of the adversarial word classes.
    for (set_label, pmat, rows) in [
        ("P1", ProbabilityMatrix::paper_p1().unwrap(), 55u64),
        ("P2", ProbabilityMatrix::paper_p2().unwrap(), 59),
    ] {
        let ct = CtCdtSampler::new(&pmat);
        for (class_label, class) in sampler_word_classes() {
            // Block path: 251 samples (not a multiple of 8, so both the
            // 8-lane body and the per-sample tail run) against the traced
            // scalar kernel on an identical stream.
            let mut vec_bits = BufferedBitSource::buffered(class.clone());
            let mut ref_bits = BufferedBitSource::new(class.clone());
            let mut block = vec![rlwe_sampler::SignedSample::new(0, false); 251];
            ct.sample_block_into(&mut vec_bits, &mut block);
            for (i, &got) in block.iter().enumerate() {
                let (want, trace) = ct.sample_traced(&mut ref_bits);
                assert_eq!(
                    got, want,
                    "{set_label}/{class_label}: block sample {i} diverged"
                );
                assert_eq!(
                    trace.bits_drawn,
                    CtCdtSampler::BITS_PER_SAMPLE,
                    "{set_label}/{class_label}: traced bit draws varied at {i}"
                );
                assert_eq!(
                    trace.comparisons, rows,
                    "{set_label}/{class_label}: traced scan length varied at {i}"
                );
            }
            // Bit-budget identity: the vector path consumed exactly the
            // same number of bits as 251 traced samples.
            assert_eq!(
                vec_bits.bits_drawn(),
                ref_bits.bits_drawn(),
                "{set_label}/{class_label}: bit budgets diverged"
            );
        }
    }
}

#[test]
fn fused_interleaved_ct_cdt_matches_per_lane_traced_samples() {
    // The grouped-encrypt fusion: eight lanes sampled straight into the
    // `8i + j` interleaved layout, each lane drawing only from its own
    // source. Gate: gathering lane j must reproduce the traced scalar
    // kernel run sequentially on lane j's source, for every adversarial
    // word class (same class in every lane — coupling would show up as
    // cross-lane divergence, as in the NTT gate).
    let r = rlwe_zq::reduce::Q7681;
    let pmat = ProbabilityMatrix::paper_p1().unwrap();
    let ct = CtCdtSampler::new(&pmat);
    let n = 64usize;
    for (class_label, class) in sampler_word_classes() {
        let mut sources: [_; 8] =
            std::array::from_fn(|_| BufferedBitSource::buffered(class.clone()));
        let mut wide = vec![0u32; 8 * n];
        ct.sample_interleaved8_into(&r, &mut sources, &mut wide);
        for lane in 0..8 {
            let mut ref_bits = BufferedBitSource::new(class.clone());
            for i in 0..n {
                let (want, _) = ct.sample_traced(&mut ref_bits);
                assert_eq!(
                    wide[8 * i + lane],
                    want.to_zq_with(&r),
                    "{class_label}: lane {lane} coefficient {i} diverged"
                );
            }
            assert_eq!(
                sources[lane].bits_drawn(),
                ref_bits.bits_drawn(),
                "{class_label}: lane {lane} bit budget diverged"
            );
        }
    }
}

#[test]
fn ntt_trace_depends_only_on_the_ring_dimension() {
    // Same n, different q: the trace is structural, so it must be
    // identical — coefficient width plays no role in the op counts.
    let mut traces = Vec::new();
    for q in [7681u32, 12289, 40961] {
        let plan = NttPlan::new(256, q).unwrap();
        let mut a: Vec<u32> = (0..256u32).map(|i| (i * 31 + 5) % q).collect();
        let f = plan.forward_traced(&mut a);
        let i = plan.inverse_traced(&mut a);
        traces.push((f, i));
    }
    assert!(traces.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn decapsulation_hash_shape_is_identical_on_accept_and_reject() {
    // The CtCdt rung makes the re-encryption's random-bit consumption
    // (and therefore the DRBG's SHA-256 refill count) fixed, so the
    // *entire* decapsulation hash trace must be input-independent.
    let ctx = RlweContext::builder(ParamSet::P1)
        .sampler(SamplerKind::CtCdt)
        .build()
        .unwrap();
    let (pk, sk, ct, key, mauled) = accept_and_reject_pair(&ctx, [31u8; 32]);

    probe::start();
    let accept_key = ctx.decapsulate_cca(&sk, &pk, &ct).unwrap();
    let accept_trace = probe::take();

    probe::start();
    let reject_key = ctx.decapsulate_cca(&sk, &pk, &mauled).unwrap();
    let reject_trace = probe::take();

    // The two runs really did take opposite paths...
    assert_eq!(accept_key, key, "fixture ciphertext must accept");
    assert_ne!(reject_key, key, "mauled ciphertext must reject");
    // ...yet performed exactly the same hash calls.
    assert!(!accept_trace.is_empty());
    assert_eq!(
        accept_trace, reject_trace,
        "hash-call shape differed between accept and reject"
    );
}

#[test]
fn decapsulation_hash_shape_depends_only_on_the_parameter_set() {
    let ctx = RlweContext::builder(ParamSet::P1)
        .sampler(SamplerKind::CtCdt)
        .build()
        .unwrap();
    let (pk1, sk1, ct1, _, _) = accept_and_reject_pair(&ctx, [41u8; 32]);
    let (pk2, sk2, ct2, _, _) = accept_and_reject_pair(&ctx, [42u8; 32]);

    probe::start();
    ctx.decapsulate_cca(&sk1, &pk1, &ct1).unwrap();
    let trace1 = probe::take();

    probe::start();
    ctx.decapsulate_cca(&sk2, &pk2, &ct2).unwrap();
    let trace2 = probe::take();

    assert_eq!(
        trace1, trace2,
        "hash-call shape varied across independent keypairs/ciphertexts"
    );
}

#[test]
fn toggling_observability_leaves_decap_operation_traces_bit_identical() {
    // The `rlwe-obs` gate: span tracing and metric recording are keyed
    // only by public data (wall-clock reads + relaxed atomic adds), so
    // turning the whole observability layer on must not change a single
    // operation in the decapsulation path. Pinned exactly: the hash-call
    // trace (count and per-call message lengths — the DRBG/KDF shape the
    // other gates police) and the NTT reduction-op trace, on both the
    // accept and the implicit-reject path, with identical derived keys.
    let ctx = RlweContext::builder(ParamSet::P1)
        .sampler(SamplerKind::CtCdt)
        .build()
        .unwrap();
    let (pk, sk, ct, key, mauled) = accept_and_reject_pair(&ctx, [51u8; 32]);

    let run = |tracing: bool| {
        rlwe_obs::set_tracing(tracing);
        probe::start();
        let accept_key = ctx.decapsulate_cca(&sk, &pk, &ct).unwrap();
        let accept_trace = probe::take();
        probe::start();
        let reject_key = ctx.decapsulate_cca(&sk, &pk, &mauled).unwrap();
        let reject_trace = probe::take();
        rlwe_obs::set_tracing(false);
        (accept_key, accept_trace, reject_key, reject_trace)
    };

    let (key_off, accept_off, rkey_off, reject_off) = run(false);
    let (key_on, accept_on, rkey_on, reject_on) = run(true);

    // Same fixture semantics under both modes...
    assert_eq!(key_off, key, "obs-off accept key diverged from fixture");
    assert_eq!(key_on, key, "obs-on accept key diverged from fixture");
    assert_eq!(rkey_on, rkey_off, "reject-path keys diverged across modes");
    // ...and bit-identical operation traces.
    assert!(!accept_off.is_empty());
    assert_eq!(
        accept_on, accept_off,
        "enabling tracing changed the accept-path hash-call shape"
    );
    assert_eq!(
        reject_on, reject_off,
        "enabling tracing changed the reject-path hash-call shape"
    );

    // The transform layer is equally blind to the toggle: identical
    // reduction-op traces and outputs with tracing on and off.
    let plan = NttPlan::new(256, 7681).unwrap();
    let input: Vec<u32> = (0..256u32).map(|i| (i * 31) % 7681).collect();
    let mut a_off = input.clone();
    let t_off = plan.forward_traced(&mut a_off);
    rlwe_obs::set_tracing(true);
    let mut a_on = input.clone();
    let t_on = plan.forward_traced(&mut a_on);
    rlwe_obs::set_tracing(false);
    assert_eq!(t_on, t_off, "NTT op trace changed under tracing");
    assert_eq!(a_on, a_off, "NTT output changed under tracing");
}

//! Quick ad-hoc timing: scalar vs AVX2 forward/inverse (dev aid).
use rlwe_ntt::NttPlan;
use std::time::Instant;

fn time_ns(mut f: impl FnMut(), reps: u32) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos() as f64 / reps as f64
}

fn main() {
    let plan = NttPlan::new(512, 12289).unwrap();
    let a: Vec<u32> = (0..512u32).map(|i| (i * 97 + 3) % 12289).collect();
    let mut buf = a.clone();
    let reps = 20_000;
    println!("has_avx2 = {}", plan.has_avx2());
    let scalar = time_ns(|| plan.forward(std::hint::black_box(&mut buf)), reps);
    let avx2 = time_ns(|| plan.forward_avx2(std::hint::black_box(&mut buf)), reps);
    println!(
        "forward  scalar {scalar:8.1} ns   avx2 {avx2:8.1} ns   speedup {:.2}x",
        scalar / avx2
    );
    let scalar_i = time_ns(|| plan.inverse(std::hint::black_box(&mut buf)), reps);
    let avx2_i = time_ns(|| plan.inverse_avx2(std::hint::black_box(&mut buf)), reps);
    println!(
        "inverse  scalar {scalar_i:8.1} ns   avx2 {avx2_i:8.1} ns   speedup {:.2}x",
        scalar_i / avx2_i
    );
    let mut wide = vec![0u32; 8 * 512];
    let il = time_ns(
        || plan.forward_interleaved8(std::hint::black_box(&mut wide)),
        reps / 4,
    );
    println!(
        "interleaved8 forward {il:8.1} ns total, {:8.1} ns/poly",
        il / 8.0
    );
}

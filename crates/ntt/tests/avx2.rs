//! AVX2 backend equivalence: the vectorized transforms must be
//! bit-identical to the scalar reference and SWAR backends, and the
//! interleaved eight-polynomial transform must match eight sequential
//! single-polynomial transforms lane for lane.
//!
//! On hosts without AVX2 the wrapper entry points fall back to the
//! scalar algorithm, so every assertion here still runs and must still
//! hold — the tests log a note instead of skipping silently, and CI
//! stays green on any architecture.

use proptest::prelude::*;
use rlwe_ntt::swar::{forward_swar, pack_coeffs4, unpack_coeffs4};
use rlwe_ntt::NttPlan;

/// (label, n, q) for the paper's two rings.
const RINGS: [(&str, usize, u32); 2] = [("P1", 256, 7681), ("P2", 512, 12289)];

fn poly_strategy(n: usize, q: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..q, n)
}

/// Strategy producing one random polynomial per ring.
fn pair_strategy() -> impl Strategy<Value = [Vec<u32>; 2]> {
    (
        poly_strategy(RINGS[0].1, RINGS[0].2),
        poly_strategy(RINGS[1].1, RINGS[1].2),
    )
        .prop_map(|(a, b)| [a, b])
}

/// Logs (once per process would be nicer, but per-test is harmless)
/// whether the assertions below exercised the vector kernels or the
/// scalar fallback.
fn note_host_capability() {
    if !rlwe_ntt::avx2::available() {
        eprintln!("note: host lacks AVX2 — exercising the scalar fallback paths only");
    }
}

/// Asserts the AVX2 entry points agree with the reference and SWAR
/// backends on one plan/input pair.
fn assert_avx2_matches_scalar<R: rlwe_zq::Reducer>(plan: &NttPlan<R>, a: &[u32], label: &str) {
    let reference = plan.forward_copy(a);

    let mut via_avx2 = a.to_vec();
    plan.forward_avx2(&mut via_avx2);
    assert_eq!(via_avx2, reference, "avx2 forward diverged on {label}");

    let mut lanes = pack_coeffs4(a);
    forward_swar(plan, &mut lanes);
    assert_eq!(
        unpack_coeffs4(&lanes),
        reference,
        "swar disagreed with the reference on {label}"
    );

    let mut back = reference.clone();
    plan.inverse_avx2(&mut back);
    assert_eq!(back, a, "avx2 inverse broke the round trip on {label}");
}

/// Asserts the interleaved-8 transform matches eight sequential
/// single-polynomial transforms, forward and inverse.
fn assert_interleaved_matches_sequential<R: rlwe_zq::Reducer>(
    plan: &NttPlan<R>,
    polys: &[Vec<u32>],
    label: &str,
) {
    let n = polys[0].len();
    let refs: Vec<&[u32]> = polys.iter().map(|p| p.as_slice()).collect();
    let mut buf = vec![0u32; 8 * n];
    rlwe_ntt::avx2::interleave8_into(&refs, n, &mut buf);
    plan.forward_interleaved8(&mut buf);
    let mut lane_out = vec![0u32; n];
    for (lane, p) in polys.iter().enumerate() {
        rlwe_ntt::avx2::deinterleave8_lane(&buf, lane, &mut lane_out);
        assert_eq!(
            lane_out,
            plan.forward_copy(p),
            "interleaved forward lane {lane} diverged on {label}"
        );
    }
    plan.inverse_interleaved8(&mut buf);
    for (lane, p) in polys.iter().enumerate() {
        rlwe_ntt::avx2::deinterleave8_lane(&buf, lane, &mut lane_out);
        assert_eq!(
            &lane_out, p,
            "interleaved inverse lane {lane} broke the round trip on {label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn avx2_forward_and_inverse_agree_with_scalar_backends(polys in pair_strategy()) {
        note_host_capability();
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let generic = NttPlan::new(*n, *q).unwrap();
            assert_avx2_matches_scalar(&generic, a, label);
        }
        // The specialized-reducer plans drive the same vector kernels
        // through their own twiddle tables; they must agree too.
        let p1 = NttPlan::with_reducer(256, rlwe_zq::reduce::Q7681).unwrap();
        assert_avx2_matches_scalar(&p1, &polys[0], "P1/q7681");
        let p2 = NttPlan::with_reducer(512, rlwe_zq::reduce::Q12289).unwrap();
        assert_avx2_matches_scalar(&p2, &polys[1], "P2/q12289");
    }

    #[test]
    fn interleaved_transform_matches_eight_sequential_transforms(
        polys in pair_strategy(),
        seed in 1u32..1000,
    ) {
        note_host_capability();
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            // Eight distinct polynomials: the random one plus seven
            // derived rotations, so every lane carries different data.
            let eight: Vec<Vec<u32>> = (0..8u32)
                .map(|lane| {
                    a.iter()
                        .enumerate()
                        .map(|(i, &c)| (c + lane * (seed + i as u32)) % q)
                        .collect()
                })
                .collect();
            let plan = NttPlan::new(*n, *q).unwrap();
            assert_interleaved_matches_sequential(&plan, &eight, label);
        }
    }
}

#[test]
fn avx2_survives_worst_case_vectors() {
    // All-(q−1) inputs drive every lazy bound to its edge in every
    // stage; the vector kernels must stay bit-identical anyway.
    note_host_capability();
    for (label, n, q) in RINGS {
        let plan = NttPlan::new(n, q).unwrap();
        let worst = vec![q - 1; n];
        assert_avx2_matches_scalar(&plan, &worst, label);
        let eight = vec![worst.clone(); 8];
        assert_interleaved_matches_sequential(&plan, &eight, label);
    }
    let p1 = NttPlan::with_reducer(256, rlwe_zq::reduce::Q7681).unwrap();
    assert_avx2_matches_scalar(&p1, &vec![7680u32; 256], "P1/q7681 worst case");
    let p2 = NttPlan::with_reducer(512, rlwe_zq::reduce::Q12289).unwrap();
    assert_avx2_matches_scalar(&p2, &vec![12288u32; 512], "P2/q12289 worst case");
}

#[test]
fn partial_interleave_groups_zero_fill_the_unused_lanes() {
    // The engine's grouped encrypt interleaves fewer than eight
    // polynomials on the tail group; the helper must zero-fill the rest
    // so the transform runs on well-formed (< q) residues.
    let (n, q) = (256usize, 7681u32);
    let plan = NttPlan::new(n, q).unwrap();
    let a: Vec<u32> = (0..n as u32).map(|i| (i * 31 + 5) % q).collect();
    let b: Vec<u32> = (0..n as u32).map(|i| (i * 17 + 11) % q).collect();
    let mut buf = vec![u32::MAX; 8 * n];
    rlwe_ntt::avx2::interleave8_into(&[&a, &b], n, &mut buf);
    plan.forward_interleaved8(&mut buf);
    let mut lane_out = vec![0u32; n];
    rlwe_ntt::avx2::deinterleave8_lane(&buf, 0, &mut lane_out);
    assert_eq!(lane_out, plan.forward_copy(&a));
    rlwe_ntt::avx2::deinterleave8_lane(&buf, 1, &mut lane_out);
    assert_eq!(lane_out, plan.forward_copy(&b));
    // An all-zero lane transforms to all zeros.
    rlwe_ntt::avx2::deinterleave8_lane(&buf, 7, &mut lane_out);
    assert!(lane_out.iter().all(|&c| c == 0), "unused lane not zeroed");
}

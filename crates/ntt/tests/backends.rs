//! Cross-backend equivalence: the reference scalar transform, the packed
//! two-per-word transform and the SWAR four-lane transform must agree
//! coefficient-for-coefficient on random polynomials.
//!
//! Rings covered: the paper's P1 (n=256, q=7681) and P2 (n=512, q=12289),
//! plus a larger "P3" ring (n=1024, q=12289 — 12288 = 3·2¹², so the same
//! prime supports n up to 2048) that exercises deeper butterfly ladders
//! than either paper set.

use proptest::prelude::*;
use rlwe_ntt::packed::{forward_packed, inverse_packed};
use rlwe_ntt::swar::{forward_swar, pack_coeffs4, unpack_coeffs4};
use rlwe_ntt::{NttPlan, PolyScratch};

/// (label, n, q) for the three rings under test.
const RINGS: [(&str, usize, u32); 3] = [("P1", 256, 7681), ("P2", 512, 12289), ("P3", 1024, 12289)];

fn poly_strategy(n: usize, q: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..q, n)
}

/// Strategy producing one random polynomial per ring.
fn triple_strategy() -> impl Strategy<Value = [Vec<u32>; 3]> {
    (
        poly_strategy(RINGS[0].1, RINGS[0].2),
        poly_strategy(RINGS[1].1, RINGS[1].2),
        poly_strategy(RINGS[2].1, RINGS[2].2),
    )
        .prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_agrees_across_all_backends(polys in triple_strategy()) {
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let reference = plan.forward_copy(a);

            let mut packed_words = rlwe_ntt::packed::pack_coeffs(a);
            forward_packed(&plan, &mut packed_words);
            prop_assert_eq!(
                rlwe_ntt::packed::unpack_coeffs(&packed_words),
                reference.clone(),
                "packed forward diverged on {}", label
            );

            let mut lanes = pack_coeffs4(a);
            forward_swar(&plan, &mut lanes);
            prop_assert_eq!(
                unpack_coeffs4(&lanes),
                reference,
                "swar forward diverged on {}", label
            );
        }
    }

    #[test]
    fn inverse_agrees_between_reference_and_packed(polys in triple_strategy()) {
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let reference = plan.inverse_copy(a);
            let mut packed_words = rlwe_ntt::packed::pack_coeffs(a);
            inverse_packed(&plan, &mut packed_words);
            prop_assert_eq!(
                rlwe_ntt::packed::unpack_coeffs(&packed_words),
                reference,
                "packed inverse diverged on {}", label
            );
        }
    }

    #[test]
    fn every_backend_round_trips_through_the_reference_inverse(polys in triple_strategy()) {
        // forward (any backend) ∘ reference inverse == identity: the
        // backends must produce genuinely the same NTT-domain values, not
        // merely self-consistent ones.
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();

            let mut via_packed = rlwe_ntt::packed::pack_coeffs(a);
            forward_packed(&plan, &mut via_packed);
            let flat = rlwe_ntt::packed::unpack_coeffs(&via_packed);
            prop_assert_eq!(&plan.inverse_copy(&flat), a, "packed→reference on {}", label);

            let mut via_swar = pack_coeffs4(a);
            forward_swar(&plan, &mut via_swar);
            let flat = unpack_coeffs4(&via_swar);
            prop_assert_eq!(&plan.inverse_copy(&flat), a, "swar→reference on {}", label);
        }
    }

    #[test]
    fn negacyclic_mul_into_matches_allocating_mul(polys in triple_strategy(), seed in 1u32..1000) {
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let b: Vec<u32> = (0..*n as u32).map(|i| (i * seed + 3) % q).collect();
            let want = plan.negacyclic_mul(a, &b);
            let mut out = vec![0u32; *n];
            let mut scratch = PolyScratch::new(*n);
            plan.negacyclic_mul_into(a, &b, &mut out, &mut scratch).unwrap();
            prop_assert_eq!(out, want, "negacyclic_mul_into diverged on {}", label);
        }
    }
}

#[test]
fn length_mismatches_surface_as_errors() {
    let plan = NttPlan::new(256, 7681).unwrap();
    let a = vec![0u32; 256];
    let short = vec![0u32; 128];
    let mut out = vec![0u32; 256];
    let mut scratch = PolyScratch::new(256);
    assert!(plan
        .negacyclic_mul_into(&short, &a, &mut out, &mut scratch)
        .is_err());
    assert!(plan
        .negacyclic_mul_into(&a, &short, &mut out, &mut scratch)
        .is_err());
    let mut short_out = vec![0u32; 128];
    assert!(plan
        .negacyclic_mul_into(&a, &a, &mut short_out, &mut scratch)
        .is_err());
    let mut wrong_scratch = PolyScratch::new(512);
    assert!(plan
        .negacyclic_mul_into(&a, &a, &mut out, &mut wrong_scratch)
        .is_err());
    assert!(plan.forward_into(&short, &mut out).is_err());
    assert!(plan.inverse_into(&a, &mut short_out).is_err());
}

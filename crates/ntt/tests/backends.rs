//! Cross-backend equivalence: the reference scalar transform, the packed
//! two-per-word transform and the SWAR four-lane transform must agree
//! coefficient-for-coefficient on random polynomials.
//!
//! Rings covered: the paper's P1 (n=256, q=7681) and P2 (n=512, q=12289),
//! plus a larger "P3" ring (n=1024, q=12289 — 12288 = 3·2¹², so the same
//! prime supports n up to 2048) that exercises deeper butterfly ladders
//! than either paper set.

use proptest::prelude::*;
use rlwe_ntt::packed::{forward_packed, inverse_packed};
use rlwe_ntt::swar::{forward_swar, pack_coeffs4, unpack_coeffs4};
use rlwe_ntt::{NttPlan, PolyScratch};

/// (label, n, q) for the three rings under test.
const RINGS: [(&str, usize, u32); 3] = [("P1", 256, 7681), ("P2", 512, 12289), ("P3", 1024, 12289)];

fn poly_strategy(n: usize, q: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..q, n)
}

/// Strategy producing one random polynomial per ring.
fn triple_strategy() -> impl Strategy<Value = [Vec<u32>; 3]> {
    (
        poly_strategy(RINGS[0].1, RINGS[0].2),
        poly_strategy(RINGS[1].1, RINGS[1].2),
        poly_strategy(RINGS[2].1, RINGS[2].2),
    )
        .prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_agrees_across_all_backends(polys in triple_strategy()) {
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let reference = plan.forward_copy(a);

            let mut packed_words = rlwe_ntt::packed::pack_coeffs(a);
            forward_packed(&plan, &mut packed_words);
            prop_assert_eq!(
                rlwe_ntt::packed::unpack_coeffs(&packed_words),
                reference.clone(),
                "packed forward diverged on {}", label
            );

            let mut lanes = pack_coeffs4(a);
            forward_swar(&plan, &mut lanes);
            prop_assert_eq!(
                unpack_coeffs4(&lanes),
                reference,
                "swar forward diverged on {}", label
            );
        }
    }

    #[test]
    fn inverse_agrees_between_reference_and_packed(polys in triple_strategy()) {
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let reference = plan.inverse_copy(a);
            let mut packed_words = rlwe_ntt::packed::pack_coeffs(a);
            inverse_packed(&plan, &mut packed_words);
            prop_assert_eq!(
                rlwe_ntt::packed::unpack_coeffs(&packed_words),
                reference,
                "packed inverse diverged on {}", label
            );
        }
    }

    #[test]
    fn every_backend_round_trips_through_the_reference_inverse(polys in triple_strategy()) {
        // forward (any backend) ∘ reference inverse == identity: the
        // backends must produce genuinely the same NTT-domain values, not
        // merely self-consistent ones.
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();

            let mut via_packed = rlwe_ntt::packed::pack_coeffs(a);
            forward_packed(&plan, &mut via_packed);
            let flat = rlwe_ntt::packed::unpack_coeffs(&via_packed);
            prop_assert_eq!(&plan.inverse_copy(&flat), a, "packed→reference on {}", label);

            let mut via_swar = pack_coeffs4(a);
            forward_swar(&plan, &mut via_swar);
            let flat = unpack_coeffs4(&via_swar);
            prop_assert_eq!(&plan.inverse_copy(&flat), a, "swar→reference on {}", label);
        }
    }

    #[test]
    fn forward_lazy_plus_normalization_equals_forward(polys in triple_strategy()) {
        // The lazy entry point defers the final sweep; normalizing its
        // [0, 4q) output by hand must give exactly the reduced transform.
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let reference = plan.forward_copy(a);
            let mut lazy_out = a.clone();
            plan.forward_lazy(&mut lazy_out);
            for x in lazy_out.iter_mut() {
                prop_assert!((*x as u64) < 4 * *q as u64, "lazy bound escaped on {}", label);
                *x = rlwe_zq::lazy::normalize4(*x, *q);
            }
            prop_assert_eq!(lazy_out, reference, "lazy+normalize diverged on {}", label);
        }
    }

    #[test]
    fn negacyclic_mul_into_matches_allocating_mul(polys in triple_strategy(), seed in 1u32..1000) {
        for ((label, n, q), a) in RINGS.iter().zip(&polys) {
            let plan = NttPlan::new(*n, *q).unwrap();
            let b: Vec<u32> = (0..*n as u32).map(|i| (i * seed + 3) % q).collect();
            let want = plan.negacyclic_mul(a, &b);
            let mut out = vec![0u32; *n];
            let mut scratch = PolyScratch::new(*n);
            plan.negacyclic_mul_into(a, &b, &mut out, &mut scratch).unwrap();
            prop_assert_eq!(out, want, "negacyclic_mul_into diverged on {}", label);
        }
    }
}

/// One full pass over all four backends (reference, packed, SWAR and the
/// fused parallel transform) on a specialized plan, asserting
/// bit-identity with the generic-Barrett plan's reference transform.
fn assert_specialized_backends_match<R: rlwe_zq::Reducer>(
    special: &NttPlan<R>,
    generic: &NttPlan,
    a: &[u32],
    label: &str,
) {
    let n = a.len();
    let reference = generic.forward_copy(a);

    assert_eq!(
        special.forward_copy(a),
        reference,
        "specialized reference forward diverged on {label}"
    );

    let mut packed_words = rlwe_ntt::packed::pack_coeffs(a);
    forward_packed(special, &mut packed_words);
    assert_eq!(
        rlwe_ntt::packed::unpack_coeffs(&packed_words),
        reference,
        "specialized packed forward diverged on {label}"
    );
    inverse_packed(special, &mut packed_words);
    assert_eq!(
        rlwe_ntt::packed::unpack_coeffs(&packed_words),
        a,
        "specialized packed inverse broke the round trip on {label}"
    );

    let mut lanes = pack_coeffs4(a);
    forward_swar(special, &mut lanes);
    assert_eq!(
        unpack_coeffs4(&lanes),
        reference,
        "specialized swar forward diverged on {label}"
    );

    let mut x = a.to_vec();
    let mut y = a.to_vec();
    let mut z = a.to_vec();
    rlwe_ntt::parallel::forward3(special, [&mut x, &mut y, &mut z]);
    assert_eq!(x, reference, "specialized forward3 diverged on {label}");
    assert_eq!(y, z, "specialized forward3 lanes diverged on {label}");

    assert_eq!(
        special.inverse_copy(&reference),
        a,
        "specialized inverse diverged on {label}"
    );
    let b: Vec<u32> = (0..n as u32)
        .map(|i| (i * 131 + 17) % special.q())
        .collect();
    assert_eq!(
        special.negacyclic_mul(a, &b),
        generic.negacyclic_mul(a, &b),
        "specialized negacyclic_mul diverged on {label}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn specialized_plans_are_bit_identical_across_all_backends(polys in triple_strategy()) {
        // Acceptance gate for the monomorphized reduction core: for both
        // paper rings (plus the deeper P3 ring on the 12289 reducer),
        // every backend driven by a specialized plan must agree
        // bit-for-bit with the generic-Barrett plan — on random vectors
        // here and on the all-(q−1) worst case below.
        let p1 = NttPlan::with_reducer(256, rlwe_zq::reduce::Q7681).unwrap();
        let g1 = NttPlan::new(256, 7681).unwrap();
        assert_specialized_backends_match(&p1, &g1, &polys[0], "P1/q7681");

        let p2 = NttPlan::with_reducer(512, rlwe_zq::reduce::Q12289).unwrap();
        let g2 = NttPlan::new(512, 12289).unwrap();
        assert_specialized_backends_match(&p2, &g2, &polys[1], "P2/q12289");

        let p3 = NttPlan::with_reducer(1024, rlwe_zq::reduce::Q12289).unwrap();
        let g3 = NttPlan::new(1024, 12289).unwrap();
        assert_specialized_backends_match(&p3, &g3, &polys[2], "P3/q12289");
    }
}

#[test]
fn specialized_plans_survive_worst_case_vectors_on_every_backend() {
    let p1 = NttPlan::with_reducer(256, rlwe_zq::reduce::Q7681).unwrap();
    let g1 = NttPlan::new(256, 7681).unwrap();
    assert_specialized_backends_match(&p1, &g1, &vec![7680u32; 256], "P1 worst case");
    let p2 = NttPlan::with_reducer(512, rlwe_zq::reduce::Q12289).unwrap();
    let g2 = NttPlan::new(512, 12289).unwrap();
    assert_specialized_backends_match(&p2, &g2, &vec![12288u32; 512], "P2 worst case");
}

#[test]
fn all_backends_agree_on_worst_case_vectors() {
    // All-(q−1) coefficients drive every lazy bound to its edge in every
    // stage; the three backends must still agree bit-for-bit and produce
    // canonical outputs, and the schoolbook oracle must confirm the
    // round-trip product.
    for (label, n, q) in RINGS {
        let plan = NttPlan::new(n, q).unwrap();
        let worst = vec![q - 1; n];
        let reference = plan.forward_copy(&worst);
        assert!(
            reference.iter().all(|&c| c < q),
            "unreduced forward output on {label}"
        );

        let mut packed_words = rlwe_ntt::packed::pack_coeffs(&worst);
        forward_packed(&plan, &mut packed_words);
        assert_eq!(
            rlwe_ntt::packed::unpack_coeffs(&packed_words),
            reference,
            "packed diverged on {label}"
        );

        let mut lanes = pack_coeffs4(&worst);
        forward_swar(&plan, &mut lanes);
        assert_eq!(
            unpack_coeffs4(&lanes),
            reference,
            "swar diverged on {label}"
        );

        let inv = plan.inverse_copy(&reference);
        assert_eq!(
            inv, worst,
            "round trip lost the worst-case vector on {label}"
        );
    }
    // And the worst-case product agrees with the schoolbook oracle.
    let (n, q) = (64usize, 7681u32);
    let plan = NttPlan::new(n, q).unwrap();
    let worst = vec![q - 1; n];
    assert_eq!(
        plan.negacyclic_mul(&worst, &worst),
        rlwe_ntt::schoolbook::negacyclic_mul(&worst, &worst, q)
    );
}

#[test]
fn oversized_moduli_are_rejected_at_plan_build() {
    // 3221225473 = 3·2³⁰ + 1 is the classic large NTT prime, but it sits
    // above the lazy-domain ceiling (4q must fit a u32) — the plan must
    // refuse it up front rather than overflow a butterfly.
    assert!(matches!(
        NttPlan::new(512, 3221225473u64 as u32),
        Err(rlwe_ntt::NttError::ModulusTooLarge { .. })
    ));
    // Boundary: 2³⁰ itself is out, anything below is gated by the other
    // checks only.
    assert!(matches!(
        NttPlan::new(512, 1 << 30),
        Err(rlwe_ntt::NttError::ModulusTooLarge { .. })
    ));
}

#[test]
fn length_mismatches_surface_as_errors() {
    let plan = NttPlan::new(256, 7681).unwrap();
    let a = vec![0u32; 256];
    let short = vec![0u32; 128];
    let mut out = vec![0u32; 256];
    let mut scratch = PolyScratch::new(256);
    assert!(plan
        .negacyclic_mul_into(&short, &a, &mut out, &mut scratch)
        .is_err());
    assert!(plan
        .negacyclic_mul_into(&a, &short, &mut out, &mut scratch)
        .is_err());
    let mut short_out = vec![0u32; 128];
    assert!(plan
        .negacyclic_mul_into(&a, &a, &mut short_out, &mut scratch)
        .is_err());
    let mut wrong_scratch = PolyScratch::new(512);
    assert!(plan
        .negacyclic_mul_into(&a, &a, &mut out, &mut wrong_scratch)
        .is_err());
    assert!(plan.forward_into(&short, &mut out).is_err());
    assert!(plan.inverse_into(&a, &mut short_out).is_err());
}

//! Cross-variant integration tests: every NTT path must implement the same
//! negacyclic ring multiplication, with schoolbook as the oracle.

use rlwe_ntt::packed::{negacyclic_mul_packed, pack_coeffs, unpack_coeffs};
use rlwe_ntt::{schoolbook, NttPlan};

fn pseudo_poly(n: usize, q: u32, seed: u64) -> Vec<u32> {
    // xorshift64 — deterministic, independent of the rand crate.
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % q as u64) as u32
        })
        .collect()
}

#[test]
fn ntt_mul_matches_schoolbook_p1() {
    let (n, q) = (256, 7681);
    let plan = NttPlan::new(n, q).unwrap();
    for seed in 1..=5u64 {
        let a = pseudo_poly(n, q, seed);
        let b = pseudo_poly(n, q, seed + 100);
        assert_eq!(
            plan.negacyclic_mul(&a, &b),
            schoolbook::negacyclic_mul(&a, &b, q),
            "seed {seed}"
        );
    }
}

#[test]
fn ntt_mul_matches_schoolbook_p2() {
    let (n, q) = (512, 12289);
    let plan = NttPlan::new(n, q).unwrap();
    let a = pseudo_poly(n, q, 42);
    let b = pseudo_poly(n, q, 43);
    assert_eq!(
        plan.negacyclic_mul(&a, &b),
        schoolbook::negacyclic_mul(&a, &b, q)
    );
}

#[test]
fn packed_mul_matches_scalar_mul() {
    let (n, q) = (256, 7681);
    let plan = NttPlan::new(n, q).unwrap();
    let a = pseudo_poly(n, q, 7);
    let b = pseudo_poly(n, q, 8);
    let scalar = plan.negacyclic_mul(&a, &b);
    let packed = unpack_coeffs(&negacyclic_mul_packed(
        &plan,
        &pack_coeffs(&a),
        &pack_coeffs(&b),
    ));
    assert_eq!(packed, scalar);
}

#[test]
fn convolution_is_not_cyclic() {
    // Guard against accidentally implementing the cyclic wrap: for inputs
    // that exercise the wrap-around, negacyclic and cyclic differ.
    let (n, q) = (64, 7681);
    let plan = NttPlan::new(n, q).unwrap();
    let a = pseudo_poly(n, q, 1);
    let b = pseudo_poly(n, q, 2);
    let neg = plan.negacyclic_mul(&a, &b);
    let cyc = schoolbook::cyclic_mul(&a, &b, q);
    assert_ne!(neg, cyc);
}

#[test]
fn ntt_domain_mul_is_commutative_and_associative() {
    let (n, q) = (128, 12289);
    let plan = NttPlan::new(n, q).unwrap();
    let a = pseudo_poly(n, q, 3);
    let b = pseudo_poly(n, q, 4);
    let c = pseudo_poly(n, q, 5);
    let ab_c = plan.negacyclic_mul(&plan.negacyclic_mul(&a, &b), &c);
    let a_bc = plan.negacyclic_mul(&a, &plan.negacyclic_mul(&b, &c));
    assert_eq!(ab_c, a_bc);
    assert_eq!(plan.negacyclic_mul(&a, &b), plan.negacyclic_mul(&b, &a));
}

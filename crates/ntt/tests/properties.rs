//! Property-based tests on the NTT engine.

use proptest::prelude::*;
use rlwe_ntt::packed::{forward_packed, inverse_packed, pack_coeffs, unpack_coeffs};
use rlwe_ntt::{schoolbook, NttPlan};

fn poly_strategy(n: usize, q: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..q, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_n64(a in poly_strategy(64, 7681)) {
        let plan = NttPlan::new(64, 7681).unwrap();
        let mut x = a.clone();
        plan.forward(&mut x);
        plan.inverse(&mut x);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn round_trip_packed_n64(a in poly_strategy(64, 12289)) {
        let plan = NttPlan::new(64, 12289).unwrap();
        let mut w = pack_coeffs(&a);
        forward_packed(&plan, &mut w);
        inverse_packed(&plan, &mut w);
        prop_assert_eq!(unpack_coeffs(&w), a);
    }

    #[test]
    fn mul_matches_schoolbook_n32(
        a in poly_strategy(32, 7681),
        b in poly_strategy(32, 7681),
    ) {
        let plan = NttPlan::new(32, 7681).unwrap();
        prop_assert_eq!(
            plan.negacyclic_mul(&a, &b),
            schoolbook::negacyclic_mul(&a, &b, 7681)
        );
    }

    #[test]
    fn forward_is_injective_on_distinct_inputs(
        a in poly_strategy(32, 7681),
        b in poly_strategy(32, 7681),
    ) {
        prop_assume!(a != b);
        let plan = NttPlan::new(32, 7681).unwrap();
        prop_assert_ne!(plan.forward_copy(&a), plan.forward_copy(&b));
    }

    #[test]
    fn scaling_commutes_with_transform(a in poly_strategy(32, 7681), k in 1u32..7681) {
        let plan = NttPlan::new(32, 7681).unwrap();
        let q = plan.modulus();
        let scaled: Vec<u32> = a.iter().map(|&x| q.mul(x, k)).collect();
        let fa_scaled: Vec<u32> = plan.forward_copy(&a).iter().map(|&x| q.mul(x, k)).collect();
        prop_assert_eq!(plan.forward_copy(&scaled), fa_scaled);
    }

    #[test]
    fn mul_by_one_is_identity(a in poly_strategy(64, 12289)) {
        let plan = NttPlan::new(64, 12289).unwrap();
        let mut one = vec![0u32; 64];
        one[0] = 1;
        prop_assert_eq!(plan.negacyclic_mul(&a, &one), a);
    }
}

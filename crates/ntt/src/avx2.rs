//! Runtime-detected AVX2 NTT backend: 8×32-bit lanes over the same lazy
//! Harvey butterflies as the scalar plan.
//!
//! Two kernel families live here, both **bit-identical** to the scalar
//! reference transforms by construction (every vector operation computes
//! exactly the scalar `wrapping_*` formula of `rlwe_zq::lazy` on eight
//! lanes at once — same lazy domains, same masked corrections, same
//! canonical outputs):
//!
//! * **Single-polynomial transforms** ([`NttPlan::forward_avx2`] /
//!   [`NttPlan::inverse_avx2`]): stages whose butterfly span is ≥ 8
//!   coefficients broadcast one twiddle per block and stream full
//!   vectors; the three tail stages (span 4/2/1) keep full vectors by
//!   shuffling the in-register halves (`permute2x128` for span 4,
//!   `shuffle_epi32` for spans 2 and 1) against per-lane expanded
//!   twiddle tables (`Avx2Tables`, built once at plan construction).
//! * **Interleaved 8-polynomial transforms**
//!   ([`NttPlan::forward_interleaved8`] /
//!   [`NttPlan::inverse_interleaved8`]): eight polynomials stored
//!   coefficient-interleaved (`buf[i*8 + lane]`), so *every* stage is a
//!   full-vector loop with one broadcast twiddle per block and no
//!   shuffles at all — the layout `rlwe-engine` feeds from its batch
//!   fan-out to amortize twiddle loads across a group.
//!
//! On hosts without AVX2 (or non-x86_64 targets) every entry point falls
//! back to a scalar path that executes the identical operation sequence,
//! so outputs never depend on the host CPU.
//!
//! # Unsafe policy
//!
//! `rlwe-ntt` carries a scoped exception to the workspace-wide
//! `unsafe_code = "forbid"` (crate level `deny`, mirroring
//! `rlwe-engine`'s counting-allocator precedent): the only `unsafe` in
//! the crate is the `kernel` module below — `#[target_feature(enable =
//! "avx2")]` functions plus raw-pointer vector loads/stores — and it is
//! reachable only through safe wrappers that verified
//! `is_x86_feature_detected!("avx2")` at plan-construction time and the
//! slice lengths at the call site. See DESIGN.md §11.

use rlwe_zq::lazy;
use rlwe_zq::shoup::ShoupPair;
use rlwe_zq::Reducer;

use crate::plan::NttPlan;

/// Whether the running CPU supports the AVX2 instruction set (always
/// `false` on non-x86_64 targets). Cached by `std`, so this is cheap to
/// call on hot paths.
#[inline]
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One expanded per-lane twiddle table: `val[i]`/`comp[i]` hold the
/// Shoup pair the butterfly touching coefficient `i` needs, so an
/// in-register tail stage loads its eight twiddles with one vector load
/// instead of a gather.
#[derive(Debug, Clone)]
pub(crate) struct Lanes {
    val: Vec<u32>,
    comp: Vec<u32>,
}

impl Lanes {
    /// Expands the `blocks`-wide twiddle window starting at index
    /// `blocks` (the stage's `[m..2m)` slice), repeating each pair over
    /// its `rep = n / blocks` block coefficients.
    fn expand(pairs: &[ShoupPair], blocks: usize, rep: usize) -> Self {
        let mut val = Vec::with_capacity(blocks * rep);
        let mut comp = Vec::with_capacity(blocks * rep);
        for pair in pairs.iter().skip(blocks).take(blocks) {
            for _ in 0..rep {
                val.push(pair.value);
                comp.push(pair.companion);
            }
        }
        Self { val, comp }
    }
}

/// Per-plan expanded twiddle tables for the in-register tail stages of
/// the single-polynomial AVX2 transforms. Present on a plan only when
/// the host reported AVX2 at construction time and `n ≥ 16` (smaller
/// rings fall back to the scalar kernels; they are far below the vector
/// break-even point anyway).
#[derive(Debug, Clone)]
pub(crate) struct Avx2Tables {
    /// Forward tail stages: butterfly spans 4, 2 and 1.
    fwd_t4: Lanes,
    fwd_t2: Lanes,
    fwd_t1: Lanes,
    /// Inverse head stages: butterfly spans 1, 2 and 4.
    inv_t1: Lanes,
    inv_t2: Lanes,
    inv_t4: Lanes,
}

impl Avx2Tables {
    /// Builds the expanded tables, or `None` when the AVX2 kernels are
    /// unusable for this plan (host without AVX2, or `n < 16`).
    pub(crate) fn build(
        n: usize,
        psi_bitrev: &[ShoupPair],
        ipsi_bitrev: &[ShoupPair],
    ) -> Option<Self> {
        if n < 16 || !available() {
            return None;
        }
        Some(Self {
            fwd_t4: Lanes::expand(psi_bitrev, n / 8, 8),
            fwd_t2: Lanes::expand(psi_bitrev, n / 4, 4),
            fwd_t1: Lanes::expand(psi_bitrev, n / 2, 2),
            inv_t1: Lanes::expand(ipsi_bitrev, n / 2, 2),
            inv_t2: Lanes::expand(ipsi_bitrev, n / 4, 4),
            inv_t4: Lanes::expand(ipsi_bitrev, n / 8, 8),
        })
    }
}

/// The `#[target_feature(enable = "avx2")]` kernels — the crate's only
/// `unsafe` code, see the module-level unsafe policy note.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod kernel {
    use super::{Avx2Tables, Lanes};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_blend_epi32, _mm256_loadu_si256,
        _mm256_mul_epu32, _mm256_mullo_epi32, _mm256_permute2x128_si256, _mm256_set1_epi32,
        _mm256_shuffle_epi32, _mm256_srai_epi32, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_sub_epi32,
    };
    use rlwe_zq::shoup::ShoupPair;

    /// Unsigned high-half of the lane-wise 32×32 product — the vector
    /// form of `((a as u64 * b as u64) >> 32) as u32`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mulhi_u32(a: __m256i, b: __m256i) -> __m256i {
        let even = _mm256_srli_epi64::<32>(_mm256_mul_epu32(a, b));
        let odd = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), _mm256_srli_epi64::<32>(b));
        _mm256_blend_epi32::<0b1010_1010>(even, odd)
    }

    /// Lane-wise `rlwe_zq::lazy::mul_shoup_lazy`: any `u32` input, output
    /// in `[0, 2q)` — identical wrapping-arithmetic formula.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_lazy_vec(a: __m256i, w: __m256i, w_shoup: __m256i, q: __m256i) -> __m256i {
        let t = mulhi_u32(a, w_shoup);
        _mm256_sub_epi32(_mm256_mullo_epi32(a, w), _mm256_mullo_epi32(t, q))
    }

    /// Lane-wise `rlwe_zq::lazy::reduce_once`: the masked conditional
    /// subtraction, valid for any modulus below 2³¹.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_once_vec(x: __m256i, m: __m256i) -> __m256i {
        let d = _mm256_sub_epi32(x, m);
        _mm256_add_epi32(d, _mm256_and_si256(_mm256_srai_epi32::<31>(d), m))
    }

    /// Forward Cooley-Tukey stages with butterfly span ≥ 8 `u32`s: one
    /// broadcast twiddle per block, full-vector lo/hi streaming. Twiddles
    /// are consumed sequentially from `twiddles[1..]` — exactly the
    /// per-stage `[m..2m)` windows, which are contiguous across stages.
    ///
    /// # Safety
    ///
    /// AVX2 must be available. `a.len()` must be a power of two and
    /// `twiddles` must hold at least one pair per processed block.
    #[target_feature(enable = "avx2")]
    unsafe fn fwd_wide_stages(a: &mut [u32], twiddles: &[ShoupPair], qv: __m256i, two_qv: __m256i) {
        let mut tw = twiddles.iter().skip(1);
        let mut s = a.len() >> 1;
        while s >= 8 {
            for (block, w) in a.chunks_exact_mut(2 * s).zip(&mut tw) {
                let (lo, hi) = block.split_at_mut(s);
                let lp = lo.as_mut_ptr();
                let hp = hi.as_mut_ptr();
                let wv = _mm256_set1_epi32(w.value as i32);
                let wsv = _mm256_set1_epi32(w.companion as i32);
                let mut j = 0usize;
                while j + 8 <= s {
                    let x = _mm256_loadu_si256(lp.add(j).cast());
                    let y = _mm256_loadu_si256(hp.add(j).cast());
                    let u = reduce_once_vec(x, two_qv);
                    let v = mul_lazy_vec(y, wv, wsv, qv);
                    _mm256_storeu_si256(lp.add(j).cast(), _mm256_add_epi32(u, v));
                    _mm256_storeu_si256(
                        hp.add(j).cast(),
                        _mm256_sub_epi32(_mm256_add_epi32(u, two_qv), v),
                    );
                    j += 8;
                }
            }
            s >>= 1;
        }
    }

    /// Inverse Gentleman-Sande stages with butterfly span ≥ 8 `u32`s,
    /// from span `8` upward until only the merged final stage remains.
    ///
    /// # Safety
    ///
    /// AVX2 must be available. `a.len()` must be a power of two and
    /// `itwiddles` must cover each stage's `[blocks..2·blocks)` window.
    #[target_feature(enable = "avx2")]
    unsafe fn inv_wide_stages(
        a: &mut [u32],
        itwiddles: &[ShoupPair],
        qv: __m256i,
        two_qv: __m256i,
    ) {
        let mut s = 8usize;
        loop {
            let blocks = a.len() / (2 * s);
            if blocks < 2 {
                return;
            }
            let window = itwiddles.iter().skip(blocks).take(blocks);
            for (block, w) in a.chunks_exact_mut(2 * s).zip(window) {
                let (lo, hi) = block.split_at_mut(s);
                let lp = lo.as_mut_ptr();
                let hp = hi.as_mut_ptr();
                let wv = _mm256_set1_epi32(w.value as i32);
                let wsv = _mm256_set1_epi32(w.companion as i32);
                let mut j = 0usize;
                while j + 8 <= s {
                    let u = _mm256_loadu_si256(lp.add(j).cast());
                    let v = _mm256_loadu_si256(hp.add(j).cast());
                    _mm256_storeu_si256(
                        lp.add(j).cast(),
                        reduce_once_vec(_mm256_add_epi32(u, v), two_qv),
                    );
                    _mm256_storeu_si256(
                        hp.add(j).cast(),
                        mul_lazy_vec(
                            _mm256_sub_epi32(_mm256_add_epi32(u, two_qv), v),
                            wv,
                            wsv,
                            qv,
                        ),
                    );
                    j += 8;
                }
            }
            s <<= 1;
        }
    }

    /// The inverse transform's merged final stage (span `len/2`): the
    /// `n⁻¹` scaling folded into both butterfly legs, outputs canonical.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; `a.len()` must be a multiple of 16.
    #[target_feature(enable = "avx2")]
    unsafe fn inv_merged_final(
        a: &mut [u32],
        n_inv: ShoupPair,
        merged: ShoupPair,
        qv: __m256i,
        two_qv: __m256i,
    ) {
        let half = a.len() / 2;
        let (lo, hi) = a.split_at_mut(half);
        let lp = lo.as_mut_ptr();
        let hp = hi.as_mut_ptr();
        let niv = _mm256_set1_epi32(n_inv.value as i32);
        let nic = _mm256_set1_epi32(n_inv.companion as i32);
        let mv = _mm256_set1_epi32(merged.value as i32);
        let mc = _mm256_set1_epi32(merged.companion as i32);
        let mut j = 0usize;
        while j + 8 <= half {
            let u = _mm256_loadu_si256(lp.add(j).cast());
            let v = _mm256_loadu_si256(hp.add(j).cast());
            let x = mul_lazy_vec(_mm256_add_epi32(u, v), niv, nic, qv);
            _mm256_storeu_si256(lp.add(j).cast(), reduce_once_vec(x, qv));
            let y = mul_lazy_vec(_mm256_sub_epi32(_mm256_add_epi32(u, two_qv), v), mv, mc, qv);
            _mm256_storeu_si256(hp.add(j).cast(), reduce_once_vec(y, qv));
            j += 8;
        }
    }

    /// Final masked normalization sweep: `[0, 4q) → [0, q)`, the vector
    /// form of `normalize4` (two chained masked corrections).
    ///
    /// # Safety
    ///
    /// AVX2 must be available; `a.len()` must be a multiple of 8.
    #[target_feature(enable = "avx2")]
    unsafe fn normalize_sweep(a: &mut [u32], qv: __m256i, two_qv: __m256i) {
        let p = a.as_mut_ptr();
        let len = a.len();
        let mut j = 0usize;
        while j + 8 <= len {
            let x = _mm256_loadu_si256(p.add(j).cast());
            let r = reduce_once_vec(reduce_once_vec(x, two_qv), qv);
            _mm256_storeu_si256(p.add(j).cast(), r);
            j += 8;
        }
    }

    /// Generates an in-register forward tail stage: the `$swap`
    /// half-exchange pairs each butterfly's legs inside one vector, the
    /// expanded per-lane tables supply the twiddles, and `$blend` picks
    /// the add leg for the low positions and the subtract leg for the
    /// high positions.
    macro_rules! fwd_inreg_stage {
        ($name:ident, $swap:expr, $blend:literal) => {
            /// # Safety
            ///
            /// AVX2 must be available; `a`, `lanes.val` and `lanes.comp`
            /// must all have the same length, a multiple of 8.
            #[target_feature(enable = "avx2")]
            unsafe fn $name(a: &mut [u32], lanes: &Lanes, qv: __m256i, two_qv: __m256i) {
                let p = a.as_mut_ptr();
                let vp = lanes.val.as_ptr();
                let cp = lanes.comp.as_ptr();
                let len = a.len();
                let mut j = 0usize;
                while j + 8 <= len {
                    let x = _mm256_loadu_si256(p.add(j).cast());
                    let wv = _mm256_loadu_si256(vp.add(j).cast());
                    let wsv = _mm256_loadu_si256(cp.add(j).cast());
                    let r = reduce_once_vec(x, two_qv);
                    let mlz = mul_lazy_vec(x, wv, wsv, qv);
                    let lo = _mm256_add_epi32(r, $swap(mlz));
                    let hi = _mm256_sub_epi32(_mm256_add_epi32($swap(r), two_qv), mlz);
                    _mm256_storeu_si256(p.add(j).cast(), _mm256_blend_epi32::<$blend>(lo, hi));
                    j += 8;
                }
            }
        };
    }

    /// Generates an in-register inverse head stage (same layout story as
    /// [`fwd_inreg_stage`], Gentleman-Sande butterfly).
    macro_rules! inv_inreg_stage {
        ($name:ident, $swap:expr, $blend:literal) => {
            /// # Safety
            ///
            /// AVX2 must be available; `a`, `lanes.val` and `lanes.comp`
            /// must all have the same length, a multiple of 8.
            #[target_feature(enable = "avx2")]
            unsafe fn $name(a: &mut [u32], lanes: &Lanes, qv: __m256i, two_qv: __m256i) {
                let p = a.as_mut_ptr();
                let vp = lanes.val.as_ptr();
                let cp = lanes.comp.as_ptr();
                let len = a.len();
                let mut j = 0usize;
                while j + 8 <= len {
                    let x = _mm256_loadu_si256(p.add(j).cast());
                    let wv = _mm256_loadu_si256(vp.add(j).cast());
                    let wsv = _mm256_loadu_si256(cp.add(j).cast());
                    let sw = $swap(x);
                    let sum = reduce_once_vec(_mm256_add_epi32(x, sw), two_qv);
                    let diff = mul_lazy_vec(
                        _mm256_sub_epi32(_mm256_add_epi32(sw, two_qv), x),
                        wv,
                        wsv,
                        qv,
                    );
                    _mm256_storeu_si256(p.add(j).cast(), _mm256_blend_epi32::<$blend>(sum, diff));
                    j += 8;
                }
            }
        };
    }

    /// Exchanges the two 128-bit halves (span-4 butterflies).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn swap4(v: __m256i) -> __m256i {
        _mm256_permute2x128_si256::<0x01>(v, v)
    }

    /// Exchanges adjacent lane pairs (span-2 butterflies).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn swap2(v: __m256i) -> __m256i {
        _mm256_shuffle_epi32::<0x4E>(v)
    }

    /// Exchanges adjacent lanes (span-1 butterflies).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn swap1(v: __m256i) -> __m256i {
        _mm256_shuffle_epi32::<0xB1>(v)
    }

    fwd_inreg_stage!(fwd_stage_t4, swap4, 0b1111_0000);
    fwd_inreg_stage!(fwd_stage_t2, swap2, 0b1100_1100);
    fwd_inreg_stage!(fwd_stage_t1, swap1, 0b1010_1010);
    inv_inreg_stage!(inv_stage_t1, swap1, 0b1010_1010);
    inv_inreg_stage!(inv_stage_t2, swap2, 0b1100_1100);
    inv_inreg_stage!(inv_stage_t4, swap4, 0b1111_0000);

    /// Full single-polynomial forward NTT (normalized output).
    ///
    /// # Safety
    ///
    /// AVX2 must be available (the caller checked detection when it built
    /// `tbl`); `a.len()` must equal the plan dimension `n ≥ 16` that
    /// `twiddles` and `tbl` were built for.
    #[target_feature(enable = "avx2")]
    pub unsafe fn forward(
        a: &mut [u32],
        twiddles: &[ShoupPair],
        tbl: &Avx2Tables,
        q: u32,
        two_q: u32,
    ) {
        let qv = _mm256_set1_epi32(q as i32);
        let two_qv = _mm256_set1_epi32(two_q as i32);
        fwd_wide_stages(a, twiddles, qv, two_qv);
        fwd_stage_t4(a, &tbl.fwd_t4, qv, two_qv);
        fwd_stage_t2(a, &tbl.fwd_t2, qv, two_qv);
        fwd_stage_t1(a, &tbl.fwd_t1, qv, two_qv);
        normalize_sweep(a, qv, two_qv);
    }

    /// Full single-polynomial inverse NTT (scaling folded, canonical
    /// output).
    ///
    /// # Safety
    ///
    /// Same contract as [`forward`], with `itwiddles` the inverse table.
    #[target_feature(enable = "avx2")]
    pub unsafe fn inverse(
        a: &mut [u32],
        itwiddles: &[ShoupPair],
        tbl: &Avx2Tables,
        n_inv: ShoupPair,
        merged: ShoupPair,
        q: u32,
        two_q: u32,
    ) {
        let qv = _mm256_set1_epi32(q as i32);
        let two_qv = _mm256_set1_epi32(two_q as i32);
        inv_stage_t1(a, &tbl.inv_t1, qv, two_qv);
        inv_stage_t2(a, &tbl.inv_t2, qv, two_qv);
        inv_stage_t4(a, &tbl.inv_t4, qv, two_qv);
        inv_wide_stages(a, itwiddles, qv, two_qv);
        inv_merged_final(a, n_inv, merged, qv, two_qv);
    }

    /// Forward NTT over eight coefficient-interleaved polynomials: with
    /// every coefficient widened to a full vector, *all* stages are
    /// broadcast-twiddle wide stages (the span in `u32`s never drops
    /// below 8), so this is just [`fwd_wide_stages`] plus the sweep.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; `buf.len()` must equal `8n` for the plan
    /// dimension `n` that `twiddles` was built for.
    #[target_feature(enable = "avx2")]
    pub unsafe fn forward_interleaved(buf: &mut [u32], twiddles: &[ShoupPair], q: u32, two_q: u32) {
        let qv = _mm256_set1_epi32(q as i32);
        let two_qv = _mm256_set1_epi32(two_q as i32);
        fwd_wide_stages(buf, twiddles, qv, two_qv);
        normalize_sweep(buf, qv, two_qv);
    }

    /// Inverse NTT over eight coefficient-interleaved polynomials.
    ///
    /// # Safety
    ///
    /// Same contract as [`forward_interleaved`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn inverse_interleaved(
        buf: &mut [u32],
        itwiddles: &[ShoupPair],
        n_inv: ShoupPair,
        merged: ShoupPair,
        q: u32,
        two_q: u32,
    ) {
        let qv = _mm256_set1_epi32(q as i32);
        let two_qv = _mm256_set1_epi32(two_q as i32);
        inv_wide_stages(buf, itwiddles, qv, two_qv);
        inv_merged_final(buf, n_inv, merged, qv, two_qv);
    }
}

/// Scalar fallback for the interleaved-8 forward transform: the scalar
/// reference algorithm with every butterfly span scaled by the eight
/// interleaved lanes — identical operation sequence per element, so the
/// result is bit-identical to the AVX2 kernel *and* to eight separate
/// scalar transforms.
fn forward_interleaved_scalar<R: Reducer>(plan: &NttPlan<R>, buf: &mut [u32]) {
    let r = *plan.reducer();
    let q = r.q();
    let two_q = r.two_q();
    let mut tw = plan.forward_twiddles().iter().skip(1);
    let mut s = buf.len() >> 1;
    while s >= 8 {
        for (block, w) in buf.chunks_exact_mut(2 * s).zip(&mut tw) {
            let (lo, hi) = block.split_at_mut(s);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = r.reduce_once_2q(*x);
                let v = w.mul_lazy(*y, q);
                *x = lazy::add_lazy(u, v);
                *y = lazy::sub_lazy(u, v, two_q);
            }
        }
        s >>= 1;
    }
    for x in buf.iter_mut() {
        *x = r.normalize4(*x);
    }
}

/// Scalar fallback for the interleaved-8 inverse transform (see
/// [`forward_interleaved_scalar`]).
fn inverse_interleaved_scalar<R: Reducer>(plan: &NttPlan<R>, buf: &mut [u32]) {
    let r = *plan.reducer();
    let q = r.q();
    let two_q = r.two_q();
    let itw = plan.inverse_twiddles();
    let mut s = 8usize;
    loop {
        let blocks = buf.len() / (2 * s);
        if blocks < 2 {
            break;
        }
        let window = itw.iter().skip(blocks).take(blocks);
        for (block, w) in buf.chunks_exact_mut(2 * s).zip(window) {
            let (lo, hi) = block.split_at_mut(s);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *x;
                let v = *y;
                *x = r.reduce_once_2q(lazy::add_lazy(u, v));
                *y = w.mul_lazy(lazy::sub_lazy(u, v, two_q), q);
            }
        }
        s <<= 1;
    }
    let n_inv = plan.n_inv_pair();
    let merged = plan.merged_inverse_twiddle();
    let half = buf.len() / 2;
    let (lo, hi) = buf.split_at_mut(half);
    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
        let u = *x;
        let v = *y;
        *x = r.reduce_once(n_inv.mul_lazy(lazy::add_lazy(u, v), q));
        *y = r.reduce_once(merged.mul_lazy(lazy::sub_lazy(u, v, two_q), q));
    }
}

impl<R: Reducer> NttPlan<R> {
    /// Whether this plan carries live AVX2 kernels: the host reported
    /// AVX2 at construction time and `n ≥ 16`. When `false`,
    /// [`NttPlan::forward_avx2`] / [`NttPlan::inverse_avx2`] silently
    /// run the scalar reference transforms (bit-identical outputs either
    /// way).
    #[inline]
    pub fn has_avx2(&self) -> bool {
        self.avx2_tables().is_some()
    }

    /// In-place forward NTT through the AVX2 kernels when available,
    /// the scalar reference transform otherwise — bit-identical outputs
    /// on every host.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    // Scoped unsafe exception: the single detection-gated kernel
    // call below (see the SAFETY comment at the call site).
    #[allow(unsafe_code)]
    pub fn forward_avx2(&self, a: &mut [u32]) {
        #[cfg(target_arch = "x86_64")]
        if let Some(tbl) = self.avx2_tables() {
            assert_eq!(a.len(), self.n(), "polynomial length must equal n");
            // SAFETY: `tbl` exists only when `is_x86_feature_detected!`
            // confirmed AVX2 at plan construction on this host, and the
            // assert above pins `a.len()` to the `n` the tables were
            // built for.
            unsafe { kernel::forward(a, self.forward_twiddles(), tbl, self.q(), self.two_q()) }
            return;
        }
        self.forward(a);
    }

    /// In-place inverse NTT through the AVX2 kernels when available,
    /// the scalar reference transform otherwise — bit-identical outputs
    /// on every host.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    // Scoped unsafe exception: the single detection-gated kernel
    // call below (see the SAFETY comment at the call site).
    #[allow(unsafe_code)]
    pub fn inverse_avx2(&self, a: &mut [u32]) {
        #[cfg(target_arch = "x86_64")]
        if let Some(tbl) = self.avx2_tables() {
            assert_eq!(a.len(), self.n(), "polynomial length must equal n");
            // SAFETY: as in `forward_avx2` — detection-gated tables plus
            // the length assert satisfy the kernel's contract.
            unsafe {
                kernel::inverse(
                    a,
                    self.inverse_twiddles(),
                    tbl,
                    self.n_inv_pair(),
                    self.merged_inverse_twiddle(),
                    self.q(),
                    self.two_q(),
                )
            }
            return;
        }
        self.inverse(a);
    }

    /// In-place forward NTT of **eight** polynomials stored
    /// coefficient-interleaved (`buf[i*8 + lane]` is coefficient `i` of
    /// polynomial `lane`): one broadcast twiddle load serves eight
    /// butterflies in every stage. Uses the AVX2 kernel when the host
    /// supports it, a bit-identical scalar loop otherwise; either way
    /// the result equals eight separate [`NttPlan::forward`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != 8 * n`.
    // Scoped unsafe exception: the single detection-gated kernel
    // call below (see the SAFETY comment at the call site).
    #[allow(unsafe_code)]
    pub fn forward_interleaved8(&self, buf: &mut [u32]) {
        assert_eq!(
            buf.len(),
            8 * self.n(),
            "interleaved buffer must hold 8 polynomials"
        );
        #[cfg(target_arch = "x86_64")]
        if available() {
            // SAFETY: runtime detection checked on the line above; the
            // assert pins `buf.len()` to `8n`.
            unsafe {
                kernel::forward_interleaved(buf, self.forward_twiddles(), self.q(), self.two_q())
            }
            return;
        }
        forward_interleaved_scalar(self, buf);
    }

    /// In-place inverse NTT of eight coefficient-interleaved polynomials
    /// (see [`NttPlan::forward_interleaved8`]); the result equals eight
    /// separate [`NttPlan::inverse`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != 8 * n`.
    // Scoped unsafe exception: the single detection-gated kernel
    // call below (see the SAFETY comment at the call site).
    #[allow(unsafe_code)]
    pub fn inverse_interleaved8(&self, buf: &mut [u32]) {
        assert_eq!(
            buf.len(),
            8 * self.n(),
            "interleaved buffer must hold 8 polynomials"
        );
        #[cfg(target_arch = "x86_64")]
        if available() {
            // SAFETY: runtime detection checked on the line above; the
            // assert pins `buf.len()` to `8n`.
            unsafe {
                kernel::inverse_interleaved(
                    buf,
                    self.inverse_twiddles(),
                    self.n_inv_pair(),
                    self.merged_inverse_twiddle(),
                    self.q(),
                    self.two_q(),
                )
            }
            return;
        }
        inverse_interleaved_scalar(self, buf);
    }
}

/// Scatters `polys` (up to 8 polynomials of length `n`) into the
/// coefficient-interleaved layout; unused lanes are zero-filled.
///
/// # Panics
///
/// Panics if `polys.len() > 8`, any polynomial's length differs from
/// `n`, or `buf.len() != 8 * n`.
pub fn interleave8_into(polys: &[&[u32]], n: usize, buf: &mut [u32]) {
    assert!(polys.len() <= 8, "at most 8 polynomials per group");
    assert_eq!(
        buf.len(),
        8 * n,
        "interleaved buffer must hold 8 polynomials"
    );
    buf.fill(0);
    for (lane, poly) in polys.iter().enumerate() {
        assert_eq!(poly.len(), n, "polynomial length must equal n");
        for (slot, &c) in buf.iter_mut().skip(lane).step_by(8).zip(poly.iter()) {
            *slot = c;
        }
    }
}

/// Gathers polynomial `lane` out of the coefficient-interleaved layout
/// into `out`.
///
/// # Panics
///
/// Panics if `lane >= 8` or `buf.len() != 8 * out.len()`.
pub fn deinterleave8_lane(buf: &[u32], lane: usize, out: &mut [u32]) {
    assert!(lane < 8, "lane must be below 8");
    assert_eq!(buf.len(), 8 * out.len(), "buffer/output length mismatch");
    for (slot, &c) in out.iter_mut().zip(buf.iter().skip(lane).step_by(8)) {
        *slot = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlwe_zq::reduce::{Q12289, Q7681};

    fn rings() -> Vec<(usize, u32)> {
        vec![
            (16, 12289),
            (64, 7681),
            (256, 7681),
            (512, 12289),
            (1024, 12289),
        ]
    }

    fn sample_poly(n: usize, q: u32, seed: u32) -> Vec<u32> {
        (0..n as u32).map(|i| (i * seed + 3) % q).collect()
    }

    #[test]
    fn avx2_forward_and_inverse_match_the_scalar_reference() {
        if !available() {
            eprintln!("note: AVX2 unavailable on this host; fallback paths exercised instead");
        }
        for (n, q) in rings() {
            let plan = NttPlan::new(n, q).unwrap();
            for seed in [1u32, 31, 97] {
                let a = sample_poly(n, q, seed);
                let mut va = a.clone();
                plan.forward_avx2(&mut va);
                assert_eq!(va, plan.forward_copy(&a), "forward diverged n={n} q={q}");
                let mut ia = a.clone();
                plan.inverse_avx2(&mut ia);
                assert_eq!(ia, plan.inverse_copy(&a), "inverse diverged n={n} q={q}");
            }
            // All-(q−1): every lazy bound at its edge.
            let worst = vec![q - 1; n];
            let mut vw = worst.clone();
            plan.forward_avx2(&mut vw);
            assert_eq!(vw, plan.forward_copy(&worst), "worst-case forward n={n}");
            let mut iw = worst.clone();
            plan.inverse_avx2(&mut iw);
            assert_eq!(iw, plan.inverse_copy(&worst), "worst-case inverse n={n}");
        }
    }

    fn check_specialized_matches_generic<R: Reducer>(s: &NttPlan<R>, g: &NttPlan, a: &[u32]) {
        let mut x = a.to_vec();
        s.forward_avx2(&mut x);
        assert_eq!(x, g.forward_copy(a));
        let mut y = a.to_vec();
        s.inverse_avx2(&mut y);
        assert_eq!(y, g.inverse_copy(a));
    }

    #[test]
    fn specialized_reducer_plans_agree_with_generic_on_the_avx2_path() {
        let s1 = NttPlan::with_reducer(256, Q7681).unwrap();
        let g1 = NttPlan::new(256, 7681).unwrap();
        check_specialized_matches_generic(&s1, &g1, &sample_poly(256, 7681, 13));
        let s2 = NttPlan::with_reducer(512, Q12289).unwrap();
        let g2 = NttPlan::new(512, 12289).unwrap();
        check_specialized_matches_generic(&s2, &g2, &sample_poly(512, 12289, 13));
    }

    #[test]
    fn interleaved_transforms_match_eight_sequential_transforms() {
        for (n, q) in [(4usize, 12289u32), (16, 12289), (256, 7681), (512, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let polys: Vec<Vec<u32>> = (0..8).map(|i| sample_poly(n, q, 7 + i)).collect();
            let refs: Vec<&[u32]> = polys.iter().map(Vec::as_slice).collect();
            let mut buf = vec![0u32; 8 * n];
            interleave8_into(&refs, n, &mut buf);
            plan.forward_interleaved8(&mut buf);
            let mut out = vec![0u32; n];
            for (lane, poly) in polys.iter().enumerate() {
                deinterleave8_lane(&buf, lane, &mut out);
                assert_eq!(out, plan.forward_copy(poly), "fwd lane {lane} n={n}");
            }
            plan.inverse_interleaved8(&mut buf);
            for (lane, poly) in polys.iter().enumerate() {
                deinterleave8_lane(&buf, lane, &mut out);
                assert_eq!(out, *poly, "round trip lane {lane} n={n}");
            }
        }
    }

    #[test]
    fn interleaved_scalar_fallback_is_bit_identical_to_the_dispatching_path() {
        // The scalar loops must agree with whatever forward_interleaved8
        // picked (on AVX2 hosts this cross-checks vector vs scalar; on
        // others it is a self-check).
        let plan = NttPlan::new(256, 7681).unwrap();
        let polys: Vec<Vec<u32>> = (0..8).map(|i| sample_poly(256, 7681, 11 + i)).collect();
        let refs: Vec<&[u32]> = polys.iter().map(Vec::as_slice).collect();
        let mut via_dispatch = vec![0u32; 8 * 256];
        interleave8_into(&refs, 256, &mut via_dispatch);
        let mut via_scalar = via_dispatch.clone();
        plan.forward_interleaved8(&mut via_dispatch);
        forward_interleaved_scalar(&plan, &mut via_scalar);
        assert_eq!(via_dispatch, via_scalar, "forward fallback diverged");
        plan.inverse_interleaved8(&mut via_dispatch);
        inverse_interleaved_scalar(&plan, &mut via_scalar);
        assert_eq!(via_dispatch, via_scalar, "inverse fallback diverged");
    }

    #[test]
    fn partial_groups_zero_fill_unused_lanes() {
        let n = 64;
        let plan = NttPlan::new(n, 7681).unwrap();
        let a = sample_poly(n, 7681, 5);
        let mut buf = vec![0xAAAA_AAAAu32; 8 * n];
        interleave8_into(&[&a, &a, &a], n, &mut buf);
        plan.forward_interleaved8(&mut buf);
        let mut out = vec![0u32; n];
        deinterleave8_lane(&buf, 2, &mut out);
        assert_eq!(out, plan.forward_copy(&a));
        // Zero lanes transform to zero.
        deinterleave8_lane(&buf, 7, &mut out);
        assert!(out.iter().all(|&c| c == 0), "zero lane must stay zero");
    }

    #[test]
    fn has_avx2_reflects_host_and_dimension_gates() {
        let small = NttPlan::new(8, 12289).unwrap();
        assert!(!small.has_avx2(), "n < 16 must not carry AVX2 tables");
        let big = NttPlan::new(256, 7681).unwrap();
        assert_eq!(big.has_avx2(), available());
    }
}

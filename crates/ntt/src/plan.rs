//! The [`NttPlan`]: precomputed twiddle tables plus the reference scalar
//! transforms.
//!
//! The butterflies are Harvey-style **lazy-reduction** kernels built on
//! `rlwe_zq::lazy`: forward coefficients travel in `[0, 4q)` across
//! stages (one masked correction + one lazy Shoup multiply per
//! butterfly, nothing else), inverse coefficients in `[0, 2q)`, and
//! canonical `[0, q)` is restored exactly once — the forward transform
//! in a final normalization sweep, the inverse inside its last stage,
//! where the `n⁻¹` post-scaling is folded into the butterfly (the
//! paper's merged-scaling trick, extended). Every residual conditional
//! subtraction is masked, so the transforms execute an input-independent
//! operation sequence; `forward_traced`/`inverse_traced` expose the
//! exact counts the leakage harness pins in CI.
//!
//! The plan is generic over its [`Reducer`]: `NttPlan` (the default,
//! `NttPlan<BarrettGeneric>`) carries the runtime modulus exactly as
//! before, while `NttPlan<Q7681>` / `NttPlan<Q12289>`
//! ([`NttPlan::with_reducer`]) monomorphize every butterfly with the
//! paper's primes as compile-time constants — same operation structure,
//! bit-identical outputs, immediate operands. [`crate::AnyNttPlan`]
//! performs the q-based selection once at the top.

use rlwe_zq::lazy;
use rlwe_zq::reduce::BarrettGeneric;
use rlwe_zq::shoup::ShoupPair;
use rlwe_zq::{Modulus, Reducer};

use crate::bitrev::bitrev;
use crate::error::NttError;
use crate::trace::{NoTrace, NttOpTrace, OpRecorder};

/// Precomputed context for n-point negacyclic NTTs modulo `q`.
///
/// Holds the merged-ψ twiddle tables (with Shoup companions, mirroring the
/// paper's precomputed twiddle LUT of §III-C) for both directions, plus the
/// scaling constant `n⁻¹` for the inverse.
///
/// The forward transform maps natural coefficient order to bit-reversed
/// "NTT domain" order; the inverse maps back. All NTT-domain values in this
/// suite (keys, ciphertexts) live in that bit-reversed order, so pointwise
/// products are consistent without any explicit permutation.
///
/// The type parameter selects the modular-reduction strategy (see
/// [`Reducer`]); it defaults to the runtime-Barrett [`BarrettGeneric`],
/// so plain `NttPlan` behaves exactly as it always has.
#[derive(Debug, Clone)]
pub struct NttPlan<R: Reducer = BarrettGeneric> {
    reducer: R,
    modulus: Modulus,
    n: usize,
    log_n: u32,
    psi: u32,
    /// `psi_bitrev[i] = ψ^bitrev(i)` with Shoup companion — forward twiddles.
    psi_bitrev: Vec<ShoupPair>,
    /// `ipsi_bitrev[i] = ψ^(−bitrev(i))` with Shoup companion — inverse twiddles.
    ipsi_bitrev: Vec<ShoupPair>,
    /// `n⁻¹ mod q` as a Shoup pair for the inverse's merged final stage.
    n_inv: ShoupPair,
    /// `n⁻¹·ψ^(−bitrev(1))` — the last inverse stage's twiddle with the
    /// `n⁻¹` scaling folded in (the merged-scaling trick).
    ipsi1_n_inv: ShoupPair,
    /// `2q`, precomputed for the lazy butterflies.
    two_q: u32,
    /// Expanded per-lane twiddle tables for the AVX2 tail stages —
    /// `Some` only when the host reported AVX2 at construction and
    /// `n ≥ 16` (see [`crate::avx2`]).
    avx2: Option<crate::avx2::Avx2Tables>,
}

impl NttPlan {
    /// Builds a runtime-Barrett plan for dimension `n` (power of two,
    /// ≥ 4) and prime `q` with `q ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// * [`NttError::InvalidDimension`] for a bad `n`.
    /// * [`NttError::NotNttFriendly`] when `2n ∤ q − 1`.
    /// * [`NttError::Modulus`] when `q` is not a usable prime.
    /// * [`NttError::ModulusTooLarge`] when `q ≥ 2³⁰`
    ///   ([`lazy::MAX_LAZY_Q`], the authoritative bound) — the
    ///   lazy-reduction butterflies track coefficients in `[0, 4q)`,
    ///   which must fit a 32-bit word.
    pub fn new(n: usize, q: u32) -> Result<Self, NttError> {
        if !n.is_power_of_two() || !(4..=1 << 20).contains(&n) {
            return Err(NttError::InvalidDimension { n });
        }
        if q >= lazy::MAX_LAZY_Q {
            return Err(NttError::ModulusTooLarge { q });
        }
        let modulus = Modulus::new(q)?;
        Self::with_reducer(n, modulus)
    }
}

impl<R: Reducer> NttPlan<R> {
    /// Builds a plan for dimension `n` over the given reducer — the
    /// monomorphizing constructor: `NttPlan::with_reducer(256,
    /// rlwe_zq::reduce::Q7681)` compiles the butterflies with `q = 7681`
    /// as an immediate constant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NttPlan::new`] (the reducer's prime already
    /// passed modulus validation, so only dimension, range and
    /// NTT-friendliness can fail here).
    pub fn with_reducer(n: usize, reducer: R) -> Result<Self, NttError> {
        if !n.is_power_of_two() || !(4..=1 << 20).contains(&n) {
            return Err(NttError::InvalidDimension { n });
        }
        let q = reducer.q();
        if q >= lazy::MAX_LAZY_Q {
            return Err(NttError::ModulusTooLarge { q });
        }
        let modulus = reducer.modulus();
        if !(q as u64 - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::NotNttFriendly { n, q });
        }
        let psi = modulus
            .root_of_unity(2 * n as u64)
            .map_err(NttError::Modulus)?;
        let psi_inv = modulus.inv(psi).expect("root of unity is a unit");
        let log_n = n.trailing_zeros();

        // psi^i and psi^-i for i in 0..n, then bit-reverse the indexing.
        let mut pw = vec![0u32; n];
        let mut ipw = vec![0u32; n];
        pw[0] = 1;
        ipw[0] = 1;
        for i in 1..n {
            pw[i] = modulus.mul(pw[i - 1], psi);
            ipw[i] = modulus.mul(ipw[i - 1], psi_inv);
        }
        let psi_bitrev: Vec<ShoupPair> = (0..n)
            .map(|i| ShoupPair::new(pw[bitrev(i, log_n)], q))
            .collect();
        let ipsi_bitrev: Vec<ShoupPair> = (0..n)
            .map(|i| ShoupPair::new(ipw[bitrev(i, log_n)], q))
            .collect();
        let n_inv_val = modulus.inv(n as u32).expect("n < q is a unit");
        let ipsi1_n_inv = ShoupPair::new(modulus.mul(ipsi_bitrev[1].value, n_inv_val), q);
        let avx2 = crate::avx2::Avx2Tables::build(n, &psi_bitrev, &ipsi_bitrev);
        Ok(Self {
            reducer,
            modulus,
            n,
            log_n,
            psi,
            psi_bitrev,
            ipsi_bitrev,
            n_inv: ShoupPair::new(n_inv_val, q),
            ipsi1_n_inv,
            two_q: 2 * q,
            avx2,
        })
    }

    /// The ring dimension n.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// log₂(n).
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus context.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The reduction strategy this plan's kernels are monomorphized over.
    #[inline]
    pub fn reducer(&self) -> &R {
        &self.reducer
    }

    /// The raw modulus value q.
    #[inline]
    pub fn q(&self) -> u32 {
        self.reducer.q()
    }

    /// The 2n-th primitive root ψ used by this plan.
    #[inline]
    pub fn psi(&self) -> u32 {
        self.psi
    }

    /// `n⁻¹ mod q`.
    #[inline]
    pub fn n_inv(&self) -> u32 {
        self.n_inv.value
    }

    /// `n⁻¹ mod q` as a Shoup pair — the merged final-stage sum-leg
    /// constant, exposed for the packed/parallel backends.
    #[inline]
    pub fn n_inv_pair(&self) -> ShoupPair {
        self.n_inv
    }

    /// `n⁻¹·ψ^(−bitrev(1))` as a Shoup pair — the merged final-stage
    /// difference-leg constant (inverse twiddle with the `n⁻¹` scaling
    /// folded in).
    #[inline]
    pub fn merged_inverse_twiddle(&self) -> ShoupPair {
        self.ipsi1_n_inv
    }

    /// `2q`, precomputed for the lazy butterflies.
    #[inline]
    pub fn two_q(&self) -> u32 {
        self.two_q
    }

    /// Forward twiddle table (`ψ^bitrev(i)` pairs) — exposed for the packed
    /// and parallel variants and for the M4F cost-model kernels.
    #[inline]
    pub fn forward_twiddles(&self) -> &[ShoupPair] {
        &self.psi_bitrev
    }

    /// Inverse twiddle table (`ψ^−bitrev(i)` pairs).
    #[inline]
    pub fn inverse_twiddles(&self) -> &[ShoupPair] {
        &self.ipsi_bitrev
    }

    /// The lazy forward stage ladder: all `log₂n` Cooley-Tukey stages with
    /// coefficients kept in `[0, 4q)` — no normalization.
    ///
    /// Each stage walks `m` blocks of `2t` coefficients through
    /// `chunks_exact_mut`/`split_at_mut`, so the inner loop carries no
    /// bounds checks; the twiddles come from the matching
    /// `psi_bitrev[m..2m]` window.
    #[inline(always)]
    fn forward_lazy_impl<Rec: OpRecorder>(&self, a: &mut [u32], rec: &mut Rec) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        let r = self.reducer;
        let q = r.q();
        let two_q = r.two_q();
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            let twiddles = &self.psi_bitrev[m..2 * m];
            for (block, s) in a.chunks_exact_mut(2 * t).zip(twiddles) {
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // Harvey butterfly: one masked correction brings the
                    // add leg back under 2q, the twiddle product lands in
                    // [0, 2q) with no correction at all, and both outputs
                    // re-enter the [0, 4q) stage invariant.
                    lazy::debug_assert_bound(*x, 4 * q as u64);
                    let u = r.reduce_once_2q(*x);
                    let v = s.mul_lazy(*y, q);
                    *x = lazy::add_lazy(u, v);
                    *y = lazy::sub_lazy(u, v, two_q);
                    rec.butterfly();
                    rec.masked_reduction();
                    rec.lazy_mul();
                }
            }
            m <<= 1;
        }
    }

    #[inline(always)]
    fn forward_impl<Rec: OpRecorder>(&self, a: &mut [u32], rec: &mut Rec) {
        self.forward_lazy_impl(a, rec);
        let r = self.reducer;
        for x in a.iter_mut() {
            *x = r.normalize4(*x);
            rec.normalization();
        }
    }

    /// In-place forward negacyclic NTT (Cooley-Tukey, decimation in time).
    ///
    /// Input: natural order, coefficients reduced mod q.
    /// Output: NTT domain in bit-reversed order, reduced mod q.
    ///
    /// The ψ powers are merged into the butterflies, so no separate
    /// pre-scaling pass is needed — this is the paper's `w = √w_m` trick
    /// (§II-C / Algorithm 3) in its standard in-place form. The stages run
    /// lazily (coefficients in `[0, 4q)`, see the module docs) and a final
    /// masked sweep restores `[0, q)`; use [`NttPlan::forward_lazy`] to
    /// skip that sweep when the consumer reduces anyway.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u32]) {
        self.forward_impl(a, &mut NoTrace);
    }

    /// [`NttPlan::forward`] without the final normalization sweep: outputs
    /// lie in `[0, 4q)`, congruent mod q to the reduced transform.
    ///
    /// This is the right entry point when the next consumer reduces
    /// anyway — e.g. a pointwise product whose reduction accepts the
    /// lazy operand domain ([`crate::pointwise::mul_lazy_assign`]).
    /// Accepts lazy inputs in `[0, 4q)` as well, so lazy stages chain.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_lazy(&self, a: &mut [u32]) {
        self.forward_lazy_impl(a, &mut NoTrace);
    }

    /// [`NttPlan::forward`] plus the exact operation counts — the hook the
    /// leakage harness's deterministic invariance tests assert on.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_traced(&self, a: &mut [u32]) -> NttOpTrace {
        let mut trace = NttOpTrace::default();
        self.forward_impl(a, &mut trace);
        trace
    }

    #[inline(always)]
    fn inverse_impl<Rec: OpRecorder>(&self, a: &mut [u32], rec: &mut Rec) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        let r = self.reducer;
        let q = r.q();
        let two_q = r.two_q();
        let mut t = 1usize;
        let mut m = self.n;
        // Lazy Gentleman-Sande stages: coefficients stay in [0, 2q); the
        // sum leg takes one masked correction, the difference leg is
        // re-reduced to [0, 2q) by the lazy twiddle multiply itself.
        while m > 2 {
            let h = m >> 1;
            let twiddles = &self.ipsi_bitrev[h..2 * h];
            for (block, s) in a.chunks_exact_mut(2 * t).zip(twiddles) {
                let (lo, hi) = block.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    lazy::debug_assert_bound(*x, 2 * q as u64);
                    lazy::debug_assert_bound(*y, 2 * q as u64);
                    let u = *x;
                    let v = *y;
                    *x = r.reduce_once_2q(lazy::add_lazy(u, v));
                    *y = s.mul_lazy(lazy::sub_lazy(u, v, two_q), q);
                    rec.butterfly();
                    rec.masked_reduction();
                    rec.lazy_mul();
                }
            }
            t <<= 1;
            m = h;
        }
        // Merged final stage: the n⁻¹ post-scaling is folded into the last
        // butterfly's twiddles (sum leg × n⁻¹, difference leg ×
        // n⁻¹·ψ^(−bitrev(1))) and the outputs are normalized to [0, q) on
        // the way out — no separate scaling pass.
        debug_assert_eq!(t, self.n / 2);
        let (lo, hi) = a.split_at_mut(t);
        for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
            let u = *x;
            let v = *y;
            *x = r.reduce_once(self.n_inv.mul_lazy(lazy::add_lazy(u, v), q));
            *y = r.reduce_once(self.ipsi1_n_inv.mul_lazy(lazy::sub_lazy(u, v, two_q), q));
            rec.butterfly();
            rec.lazy_mul();
            rec.lazy_mul();
            rec.normalization();
            rec.normalization();
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman-Sande, decimation in
    /// frequency), including the `n⁻¹` post-scaling — folded into the
    /// final stage's twiddles rather than run as a separate pass.
    ///
    /// Input: NTT domain in bit-reversed order, reduced mod q.
    /// Output: natural order coefficients, reduced mod q.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u32]) {
        self.inverse_impl(a, &mut NoTrace);
    }

    /// [`NttPlan::inverse`] plus the exact operation counts — the hook the
    /// leakage harness's deterministic invariance tests assert on.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_traced(&self, a: &mut [u32]) -> NttOpTrace {
        let mut trace = NttOpTrace::default();
        self.inverse_impl(a, &mut trace);
        trace
    }

    /// Convenience: forward-transforms a copy of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_copy(&self, a: &[u32]) -> Vec<u32> {
        let mut out = a.to_vec();
        self.forward(&mut out);
        out
    }

    /// Convenience: inverse-transforms a copy of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_copy(&self, a: &[u32]) -> Vec<u32> {
        let mut out = a.to_vec();
        self.inverse(&mut out);
        out
    }

    /// Allocation-free forward transform: copies `src` into `dst` and
    /// transforms in place.
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if either slice's length differs from
    /// `n`.
    pub fn forward_into(&self, src: &[u32], dst: &mut [u32]) -> Result<(), NttError> {
        self.check_len(src.len())?;
        self.check_len(dst.len())?;
        dst.copy_from_slice(src);
        self.forward(dst);
        Ok(())
    }

    /// Allocation-free inverse transform: copies `src` into `dst` and
    /// inverse-transforms in place.
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if either slice's length differs from
    /// `n`.
    pub fn inverse_into(&self, src: &[u32], dst: &mut [u32]) -> Result<(), NttError> {
        self.check_len(src.len())?;
        self.check_len(dst.len())?;
        dst.copy_from_slice(src);
        self.inverse(dst);
        Ok(())
    }

    /// Re-tags an already-built plan with another reducer for the same
    /// modulus, moving the twiddle tables instead of recomputing them —
    /// how [`crate::AnyNttPlan`] upgrades a generic plan to a
    /// specialized instantiation without a second construction.
    pub(crate) fn retag<R2: Reducer>(self, reducer: R2) -> NttPlan<R2> {
        debug_assert_eq!(reducer.q(), self.q(), "retag must preserve the modulus");
        NttPlan {
            reducer,
            modulus: self.modulus,
            n: self.n,
            log_n: self.log_n,
            psi: self.psi,
            psi_bitrev: self.psi_bitrev,
            ipsi_bitrev: self.ipsi_bitrev,
            n_inv: self.n_inv,
            ipsi1_n_inv: self.ipsi1_n_inv,
            two_q: self.two_q,
            avx2: self.avx2,
        }
    }

    /// The AVX2 tail-stage tables, when this plan carries them.
    #[inline]
    pub(crate) fn avx2_tables(&self) -> Option<&crate::avx2::Avx2Tables> {
        self.avx2.as_ref()
    }

    /// Validates a polynomial length against the plan.
    #[inline]
    pub(crate) fn check_len(&self, len: usize) -> Result<(), NttError> {
        if len != self.n {
            return Err(NttError::LengthMismatch {
                expected: self.n,
                got: len,
            });
        }
        Ok(())
    }

    /// Full negacyclic polynomial multiplication via the NTT
    /// (2 forward transforms + pointwise product + 1 inverse — the
    /// "NTT multiplication" row of the paper's Table I).
    ///
    /// Both forward transforms run **lazily** (`[0, 4q)` outputs, no
    /// normalization sweep): the pointwise product's reduction accepts
    /// the unreduced operands directly, so the 2n per-transform
    /// normalizations are skipped entirely.
    ///
    /// # Panics
    ///
    /// Panics if either input's length differs from n.
    pub fn negacyclic_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward_lazy(&mut fa);
        self.forward_lazy(&mut fb);
        let mut c = crate::pointwise::mul_lazy(&fa, &fb, &self.reducer)
            .expect("forward transforms preserve length");
        self.inverse(&mut c);
        c
    }

    /// Allocation-free negacyclic multiplication: `out ← a ⋆ b`, borrowing
    /// working space from `scratch`.
    ///
    /// Like [`NttPlan::negacyclic_mul`], the two forward transforms stay
    /// in the lazy domain and the pointwise reduction absorbs the
    /// normalization; the output is reduced (the inverse normalizes in
    /// its merged final stage).
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if `a`, `b`, `out` or the scratch
    /// arena's length differ from `n`.
    pub fn negacyclic_mul_into(
        &self,
        a: &[u32],
        b: &[u32],
        out: &mut [u32],
        scratch: &mut crate::PolyScratch,
    ) -> Result<(), NttError> {
        self.check_len(a.len())?;
        self.check_len(b.len())?;
        self.check_len(out.len())?;
        self.check_len(scratch.n())?;
        let mut fa = scratch.take();
        // out doubles as the second transform buffer: b̂ lands in it, the
        // pointwise product overwrites it, the inverse finishes in place.
        fa.copy_from_slice(a);
        self.forward_lazy(&mut fa);
        out.copy_from_slice(b);
        self.forward_lazy(out);
        crate::pointwise::mul_lazy_assign(out, &fa, &self.reducer)?;
        self.inverse(out);
        scratch.put(fa);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlwe_zq::reduce::{Q12289, Q7681};

    #[test]
    fn rejects_bad_dimensions() {
        assert!(matches!(
            NttPlan::new(0, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
        assert!(matches!(
            NttPlan::new(3, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
        assert!(matches!(
            NttPlan::new(96, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
        assert!(matches!(
            NttPlan::with_reducer(96, Q7681),
            Err(NttError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn rejects_unfriendly_modulus() {
        // 7681 ≡ 1 mod 512 but not mod 4096 (7680 = 2^9 * 15).
        assert!(NttPlan::new(256, 7681).is_ok());
        assert!(matches!(
            NttPlan::new(2048, 7681),
            Err(NttError::NotNttFriendly { .. })
        ));
        assert!(matches!(
            NttPlan::with_reducer(2048, Q7681),
            Err(NttError::NotNttFriendly { .. })
        ));
        assert!(matches!(
            NttPlan::new(256, 7687), // prime, but 7686 = 2 * 3 * 3 * 7 * 61
            Err(NttError::NotNttFriendly { .. })
        ));
    }

    #[test]
    fn forward_inverse_round_trip_p1() {
        let plan = NttPlan::new(256, 7681).unwrap();
        let orig: Vec<u32> = (0..256u32).map(|i| (i * 31 + 5) % 7681).collect();
        let mut a = orig.clone();
        plan.forward(&mut a);
        assert_ne!(a, orig, "transform must not be the identity");
        plan.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn forward_inverse_round_trip_p2() {
        let plan = NttPlan::new(512, 12289).unwrap();
        let orig: Vec<u32> = (0..512u32).map(|i| (i * 97 + 3) % 12289).collect();
        let mut a = orig.clone();
        plan.forward(&mut a);
        plan.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn specialized_plans_are_bit_identical_to_generic() {
        // The reducer changes how x mod q is computed, never the value:
        // the specialized plans must agree with the runtime-Barrett plan
        // on every entry point, including the all-(q−1) worst case.
        let gp1 = NttPlan::new(256, 7681).unwrap();
        let sp1 = NttPlan::with_reducer(256, Q7681).unwrap();
        let gp2 = NttPlan::new(512, 12289).unwrap();
        let sp2 = NttPlan::with_reducer(512, Q12289).unwrap();

        let a1: Vec<u32> = (0..256u32).map(|i| (i * 31 + 5) % 7681).collect();
        let worst1 = vec![7680u32; 256];
        for v in [&a1, &worst1] {
            assert_eq!(sp1.forward_copy(v), gp1.forward_copy(v));
            assert_eq!(sp1.inverse_copy(v), gp1.inverse_copy(v));
            assert_eq!(
                sp1.negacyclic_mul(v, &a1),
                gp1.negacyclic_mul(v, &a1),
                "negacyclic"
            );
        }
        let a2: Vec<u32> = (0..512u32).map(|i| (i * 97 + 3) % 12289).collect();
        let worst2 = vec![12288u32; 512];
        for v in [&a2, &worst2] {
            assert_eq!(sp2.forward_copy(v), gp2.forward_copy(v));
            assert_eq!(sp2.inverse_copy(v), gp2.inverse_copy(v));
        }
    }

    #[test]
    fn transform_is_linear() {
        let plan = NttPlan::new(64, 7681).unwrap();
        let q = 7681;
        let a: Vec<u32> = (0..64u32).map(|i| (i * 11 + 2) % q).collect();
        let b: Vec<u32> = (0..64u32).map(|i| (i * 29 + 7) % q).collect();
        let sum: Vec<u32> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| rlwe_zq::add_mod(x, y, q))
            .collect();
        let fa = plan.forward_copy(&a);
        let fb = plan.forward_copy(&b);
        let fsum = plan.forward_copy(&sum);
        let expect: Vec<u32> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| rlwe_zq::add_mod(x, y, q))
            .collect();
        assert_eq!(fsum, expect);
    }

    #[test]
    fn constant_polynomial_transforms_to_constant_vector() {
        // NTT of c·x⁰: every evaluation point sees the constant c.
        let plan = NttPlan::new(16, 12289).unwrap();
        let mut a = vec![0u32; 16];
        a[0] = 42;
        plan.forward(&mut a);
        assert!(a.iter().all(|&v| v == 42));
    }

    #[test]
    fn multiplying_by_x_matches_negacyclic_shift() {
        // x^(n-1) * x = x^n = -1 in R_q.
        let n = 32;
        let q = 12289;
        let plan = NttPlan::new(n, q).unwrap();
        let mut a = vec![0u32; n];
        a[n - 1] = 1; // x^(n-1)
        let mut x = vec![0u32; n];
        x[1] = 1; // x
        let c = plan.negacyclic_mul(&a, &x);
        let mut want = vec![0u32; n];
        want[0] = q - 1; // -1
        assert_eq!(c, want);
    }

    #[test]
    fn works_for_many_dimensions() {
        // 12289 = 1 + 3 * 2^12: supports every n up to 2048.
        for n in [4usize, 8, 16, 64, 256, 1024, 2048] {
            let plan = NttPlan::new(n, 12289).unwrap();
            let spec = NttPlan::with_reducer(n, Q12289).unwrap();
            let orig: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 1) % 12289).collect();
            let mut a = orig.clone();
            plan.forward(&mut a);
            assert_eq!(a, spec.forward_copy(&orig), "specialized diverged n={n}");
            plan.inverse(&mut a);
            assert_eq!(a, orig, "round trip failed at n={n}");
        }
    }
}

//! The [`NttPlan`]: precomputed twiddle tables plus the reference scalar
//! transforms.

use rlwe_zq::shoup::ShoupPair;
use rlwe_zq::Modulus;

use crate::bitrev::bitrev;
use crate::error::NttError;

/// Precomputed context for n-point negacyclic NTTs modulo `q`.
///
/// Holds the merged-ψ twiddle tables (with Shoup companions, mirroring the
/// paper's precomputed twiddle LUT of §III-C) for both directions, plus the
/// scaling constant `n⁻¹` for the inverse.
///
/// The forward transform maps natural coefficient order to bit-reversed
/// "NTT domain" order; the inverse maps back. All NTT-domain values in this
/// suite (keys, ciphertexts) live in that bit-reversed order, so pointwise
/// products are consistent without any explicit permutation.
#[derive(Debug, Clone)]
pub struct NttPlan {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    psi: u32,
    /// `psi_bitrev[i] = ψ^bitrev(i)` with Shoup companion — forward twiddles.
    psi_bitrev: Vec<ShoupPair>,
    /// `ipsi_bitrev[i] = ψ^(−bitrev(i))` with Shoup companion — inverse twiddles.
    ipsi_bitrev: Vec<ShoupPair>,
    /// `n⁻¹ mod q` as a Shoup pair for the inverse post-scale.
    n_inv: ShoupPair,
}

impl NttPlan {
    /// Builds a plan for dimension `n` (power of two, ≥ 4) and prime `q`
    /// with `q ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// * [`NttError::InvalidDimension`] for a bad `n`.
    /// * [`NttError::NotNttFriendly`] when `2n ∤ q − 1`.
    /// * [`NttError::Modulus`] when `q` is not a usable prime.
    pub fn new(n: usize, q: u32) -> Result<Self, NttError> {
        if !n.is_power_of_two() || !(4..=1 << 20).contains(&n) {
            return Err(NttError::InvalidDimension { n });
        }
        let modulus = Modulus::new(q)?;
        if !(q as u64 - 1).is_multiple_of(2 * n as u64) {
            return Err(NttError::NotNttFriendly { n, q });
        }
        let psi = modulus
            .root_of_unity(2 * n as u64)
            .map_err(NttError::Modulus)?;
        let psi_inv = modulus.inv(psi).expect("root of unity is a unit");
        let log_n = n.trailing_zeros();

        // psi^i and psi^-i for i in 0..n, then bit-reverse the indexing.
        let mut pw = vec![0u32; n];
        let mut ipw = vec![0u32; n];
        pw[0] = 1;
        ipw[0] = 1;
        for i in 1..n {
            pw[i] = modulus.mul(pw[i - 1], psi);
            ipw[i] = modulus.mul(ipw[i - 1], psi_inv);
        }
        let psi_bitrev = (0..n)
            .map(|i| ShoupPair::new(pw[bitrev(i, log_n)], q))
            .collect();
        let ipsi_bitrev = (0..n)
            .map(|i| ShoupPair::new(ipw[bitrev(i, log_n)], q))
            .collect();
        let n_inv_val = modulus.inv(n as u32).expect("n < q is a unit");
        Ok(Self {
            modulus,
            n,
            log_n,
            psi,
            psi_bitrev,
            ipsi_bitrev,
            n_inv: ShoupPair::new(n_inv_val, q),
        })
    }

    /// The ring dimension n.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// log₂(n).
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus context.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The raw modulus value q.
    #[inline]
    pub fn q(&self) -> u32 {
        self.modulus.value()
    }

    /// The 2n-th primitive root ψ used by this plan.
    #[inline]
    pub fn psi(&self) -> u32 {
        self.psi
    }

    /// `n⁻¹ mod q`.
    #[inline]
    pub fn n_inv(&self) -> u32 {
        self.n_inv.value
    }

    /// Forward twiddle table (`ψ^bitrev(i)` pairs) — exposed for the packed
    /// and parallel variants and for the M4F cost-model kernels.
    #[inline]
    pub fn forward_twiddles(&self) -> &[ShoupPair] {
        &self.psi_bitrev
    }

    /// Inverse twiddle table (`ψ^−bitrev(i)` pairs).
    #[inline]
    pub fn inverse_twiddles(&self) -> &[ShoupPair] {
        &self.ipsi_bitrev
    }

    /// In-place forward negacyclic NTT (Cooley-Tukey, decimation in time).
    ///
    /// Input: natural order, coefficients reduced mod q.
    /// Output: NTT domain in bit-reversed order.
    ///
    /// The ψ powers are merged into the butterflies, so no separate
    /// pre-scaling pass is needed — this is the paper's `w = √w_m` trick
    /// (§II-C / Algorithm 3) in its standard in-place form.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u32]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        let q = self.modulus.value();
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_bitrev[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = s.mul(a[j + t], q);
                    a[j] = rlwe_zq::add_mod(u, v, q);
                    a[j + t] = rlwe_zq::sub_mod(u, v, q);
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman-Sande, decimation in
    /// frequency), including the `n⁻¹` post-scaling.
    ///
    /// Input: NTT domain in bit-reversed order.
    /// Output: natural order coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u32]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        let q = self.modulus.value();
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.ipsi_bitrev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = rlwe_zq::add_mod(u, v, q);
                    a[j + t] = s.mul(rlwe_zq::sub_mod(u, v, q), q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }

    /// Convenience: forward-transforms a copy of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_copy(&self, a: &[u32]) -> Vec<u32> {
        let mut out = a.to_vec();
        self.forward(&mut out);
        out
    }

    /// Convenience: inverse-transforms a copy of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_copy(&self, a: &[u32]) -> Vec<u32> {
        let mut out = a.to_vec();
        self.inverse(&mut out);
        out
    }

    /// Allocation-free forward transform: copies `src` into `dst` and
    /// transforms in place.
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if either slice's length differs from
    /// `n`.
    pub fn forward_into(&self, src: &[u32], dst: &mut [u32]) -> Result<(), NttError> {
        self.check_len(src.len())?;
        self.check_len(dst.len())?;
        dst.copy_from_slice(src);
        self.forward(dst);
        Ok(())
    }

    /// Allocation-free inverse transform: copies `src` into `dst` and
    /// inverse-transforms in place.
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if either slice's length differs from
    /// `n`.
    pub fn inverse_into(&self, src: &[u32], dst: &mut [u32]) -> Result<(), NttError> {
        self.check_len(src.len())?;
        self.check_len(dst.len())?;
        dst.copy_from_slice(src);
        self.inverse(dst);
        Ok(())
    }

    /// Validates a polynomial length against the plan.
    #[inline]
    pub(crate) fn check_len(&self, len: usize) -> Result<(), NttError> {
        if len != self.n {
            return Err(NttError::LengthMismatch {
                expected: self.n,
                got: len,
            });
        }
        Ok(())
    }

    /// Full negacyclic polynomial multiplication via the NTT
    /// (2 forward transforms + pointwise product + 1 inverse — the
    /// "NTT multiplication" row of the paper's Table I).
    ///
    /// # Panics
    ///
    /// Panics if either input's length differs from n.
    pub fn negacyclic_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        let mut c = crate::pointwise::mul(&fa, &fb, &self.modulus)
            .expect("forward transforms preserve length");
        self.inverse(&mut c);
        c
    }

    /// Allocation-free negacyclic multiplication: `out ← a ⋆ b`, borrowing
    /// working space from `scratch`.
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if `a`, `b`, `out` or the scratch
    /// arena's length differ from `n`.
    pub fn negacyclic_mul_into(
        &self,
        a: &[u32],
        b: &[u32],
        out: &mut [u32],
        scratch: &mut crate::PolyScratch,
    ) -> Result<(), NttError> {
        self.check_len(a.len())?;
        self.check_len(b.len())?;
        self.check_len(out.len())?;
        self.check_len(scratch.n())?;
        let mut fa = scratch.take();
        // out doubles as the second transform buffer: b̂ lands in it, the
        // pointwise product overwrites it, the inverse finishes in place.
        self.forward_into(a, &mut fa)?;
        self.forward_into(b, out)?;
        crate::pointwise::mul_assign(out, &fa, &self.modulus)?;
        self.inverse(out);
        scratch.put(fa);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dimensions() {
        assert!(matches!(
            NttPlan::new(0, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
        assert!(matches!(
            NttPlan::new(3, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
        assert!(matches!(
            NttPlan::new(96, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn rejects_unfriendly_modulus() {
        // 7681 ≡ 1 mod 512 but not mod 4096 (7680 = 2^9 * 15).
        assert!(NttPlan::new(256, 7681).is_ok());
        assert!(matches!(
            NttPlan::new(2048, 7681),
            Err(NttError::NotNttFriendly { .. })
        ));
        assert!(matches!(
            NttPlan::new(256, 7687), // prime, but 7686 = 2 * 3 * 3 * 7 * 61
            Err(NttError::NotNttFriendly { .. })
        ));
    }

    #[test]
    fn forward_inverse_round_trip_p1() {
        let plan = NttPlan::new(256, 7681).unwrap();
        let orig: Vec<u32> = (0..256u32).map(|i| (i * 31 + 5) % 7681).collect();
        let mut a = orig.clone();
        plan.forward(&mut a);
        assert_ne!(a, orig, "transform must not be the identity");
        plan.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn forward_inverse_round_trip_p2() {
        let plan = NttPlan::new(512, 12289).unwrap();
        let orig: Vec<u32> = (0..512u32).map(|i| (i * 97 + 3) % 12289).collect();
        let mut a = orig.clone();
        plan.forward(&mut a);
        plan.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn transform_is_linear() {
        let plan = NttPlan::new(64, 7681).unwrap();
        let q = 7681;
        let a: Vec<u32> = (0..64u32).map(|i| (i * 11 + 2) % q).collect();
        let b: Vec<u32> = (0..64u32).map(|i| (i * 29 + 7) % q).collect();
        let sum: Vec<u32> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| rlwe_zq::add_mod(x, y, q))
            .collect();
        let fa = plan.forward_copy(&a);
        let fb = plan.forward_copy(&b);
        let fsum = plan.forward_copy(&sum);
        let expect: Vec<u32> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| rlwe_zq::add_mod(x, y, q))
            .collect();
        assert_eq!(fsum, expect);
    }

    #[test]
    fn constant_polynomial_transforms_to_constant_vector() {
        // NTT of c·x⁰: every evaluation point sees the constant c.
        let plan = NttPlan::new(16, 12289).unwrap();
        let mut a = vec![0u32; 16];
        a[0] = 42;
        plan.forward(&mut a);
        assert!(a.iter().all(|&v| v == 42));
    }

    #[test]
    fn multiplying_by_x_matches_negacyclic_shift() {
        // x^(n-1) * x = x^n = -1 in R_q.
        let n = 32;
        let q = 12289;
        let plan = NttPlan::new(n, q).unwrap();
        let mut a = vec![0u32; n];
        a[n - 1] = 1; // x^(n-1)
        let mut x = vec![0u32; n];
        x[1] = 1; // x
        let c = plan.negacyclic_mul(&a, &x);
        let mut want = vec![0u32; n];
        want[0] = q - 1; // -1
        assert_eq!(c, want);
    }

    #[test]
    fn works_for_many_dimensions() {
        // 12289 = 1 + 3 * 2^12: supports every n up to 2048.
        for n in [4usize, 8, 16, 64, 256, 1024, 2048] {
            let plan = NttPlan::new(n, 12289).unwrap();
            let orig: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 1) % 12289).collect();
            let mut a = orig.clone();
            plan.forward(&mut a);
            plan.inverse(&mut a);
            assert_eq!(a, orig, "round trip failed at n={n}");
        }
    }
}

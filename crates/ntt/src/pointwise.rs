//! Coefficient-wise (NTT-domain) arithmetic.
//!
//! In the NTT domain ring multiplication collapses to these O(n) loops —
//! the "coefficient-wise polynomial multiplications" of the paper's
//! encryption/decryption flow (§II-C).
//!
//! Every entry point validates operand lengths and returns
//! [`NttError::LengthMismatch`] instead of panicking; the unchecked loop
//! bodies live in [`rlwe_zq::SliceOps`] so the `Poly` layer above shares
//! them. The `_into` variants write into caller-provided buffers and are
//! the allocation-free path the engine's batch workers use.
//!
//! All entry points are generic over the reduction strategy
//! ([`rlwe_zq::Reducer`]): passing `&Modulus` gives the runtime-Barrett
//! kernels, passing `&rlwe_zq::reduce::Q7681`/`Q12289` (or any plan's
//! [`crate::NttPlan::reducer`]) monomorphizes the loops with the paper's
//! primes as compile-time constants.

use rlwe_zq::{Reducer, SliceOps};

use crate::NttError;

/// Validates that every slice in `rest` has the same length as `first`.
fn check_lengths(first: usize, rest: &[usize]) -> Result<(), NttError> {
    for &len in rest {
        if len != first {
            return Err(NttError::LengthMismatch {
                expected: first,
                got: len,
            });
        }
    }
    Ok(())
}

/// Pointwise product `c[i] = a[i] · b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
///
/// # Example
///
/// ```
/// use rlwe_zq::Modulus;
///
/// let q = Modulus::new(7681).unwrap();
/// let c = rlwe_ntt::pointwise::mul(&[2, 3], &[4, 5], &q).unwrap();
/// assert_eq!(c, vec![8, 15]);
/// assert!(rlwe_ntt::pointwise::mul(&[2, 3], &[4], &q).is_err());
/// ```
pub fn mul<R: Reducer>(a: &[u32], b: &[u32], q: &R) -> Result<Vec<u32>, NttError> {
    check_lengths(a.len(), &[b.len()])?;
    let mut out = vec![0u32; a.len()];
    q.mul_into_slice(&mut out, a, b);
    Ok(out)
}

/// Allocation-free pointwise product: `out[i] = a[i] · b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if `b` or `out` differ in length from `a`.
pub fn mul_into<R: Reducer>(out: &mut [u32], a: &[u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len(), out.len()])?;
    q.mul_into_slice(out, a, b);
    Ok(())
}

/// In-place pointwise product `a[i] ← a[i] · b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn mul_assign<R: Reducer>(a: &mut [u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len()])?;
    q.mul_assign_slice(a, b);
    Ok(())
}

/// Pointwise product of **lazy-domain** operands: inputs in `[0, 4q)`
/// congruent to the intended residues (exactly what
/// [`crate::NttPlan::forward_lazy`] produces); the outputs are canonical
/// `[0, q)`. This is how negacyclic multiplication skips the forward
/// transforms' normalization sweeps — the reduction of the wide product
/// absorbs them for free ([`rlwe_zq::Reducer::reduce_mul`]; the
/// generic-Barrett reducer tolerates any `u32` operands).
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn mul_lazy<R: Reducer>(a: &[u32], b: &[u32], q: &R) -> Result<Vec<u32>, NttError> {
    check_lengths(a.len(), &[b.len()])?;
    let mut out = vec![0u32; a.len()];
    q.mul_into_slice_lazy(&mut out, a, b);
    Ok(out)
}

/// In-place lazy-domain pointwise product `a[i] ← a[i] · b[i] mod q`
/// (see [`mul_lazy`] for the operand contract).
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn mul_lazy_assign<R: Reducer>(a: &mut [u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len()])?;
    q.mul_assign_slice_lazy(a, b);
    Ok(())
}

/// Pointwise sum `c[i] = a[i] + b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn add<R: Reducer>(a: &[u32], b: &[u32], q: &R) -> Result<Vec<u32>, NttError> {
    check_lengths(a.len(), &[b.len()])?;
    let mut out = vec![0u32; a.len()];
    q.add_into_slice(&mut out, a, b);
    Ok(out)
}

/// Allocation-free pointwise sum: `out[i] = a[i] + b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if `b` or `out` differ in length from `a`.
pub fn add_into<R: Reducer>(out: &mut [u32], a: &[u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len(), out.len()])?;
    q.add_into_slice(out, a, b);
    Ok(())
}

/// In-place pointwise sum `a[i] ← a[i] + b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn add_assign<R: Reducer>(a: &mut [u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len()])?;
    q.add_assign_slice(a, b);
    Ok(())
}

/// Pointwise difference `c[i] = a[i] − b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn sub<R: Reducer>(a: &[u32], b: &[u32], q: &R) -> Result<Vec<u32>, NttError> {
    check_lengths(a.len(), &[b.len()])?;
    let mut out = vec![0u32; a.len()];
    q.sub_into_slice(&mut out, a, b);
    Ok(out)
}

/// Allocation-free pointwise difference: `out[i] = a[i] − b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if `b` or `out` differ in length from `a`.
pub fn sub_into<R: Reducer>(out: &mut [u32], a: &[u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len(), out.len()])?;
    q.sub_into_slice(out, a, b);
    Ok(())
}

/// In-place pointwise difference `a[i] ← a[i] − b[i] mod q`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn sub_assign<R: Reducer>(a: &mut [u32], b: &[u32], q: &R) -> Result<(), NttError> {
    check_lengths(a.len(), &[b.len()])?;
    q.sub_assign_slice(a, b);
    Ok(())
}

/// Fused multiply-add `c[i] = a[i] · b[i] + d[i] mod q` — the shape of the
/// ciphertext computations `ã∗ẽ₁ + ẽ₂` and `p̃∗ẽ₁ + NTT(e₃ + m̄)`.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn mul_add<R: Reducer>(a: &[u32], b: &[u32], d: &[u32], q: &R) -> Result<Vec<u32>, NttError> {
    check_lengths(a.len(), &[b.len(), d.len()])?;
    let mut out = d.to_vec();
    q.mul_add_assign_slice(&mut out, a, b);
    Ok(out)
}

/// In-place fused multiply-add `acc[i] ← a[i] · b[i] + acc[i] mod q` — the
/// allocation-free sibling of [`mul_add`] used by the `_into` scheme paths.
///
/// # Errors
///
/// [`NttError::LengthMismatch`] if the inputs differ in length.
pub fn mul_add_assign<R: Reducer>(
    acc: &mut [u32],
    a: &[u32],
    b: &[u32],
    q: &R,
) -> Result<(), NttError> {
    check_lengths(acc.len(), &[a.len(), b.len()])?;
    q.mul_add_assign_slice(acc, a, b);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlwe_zq::Modulus;

    fn q() -> Modulus {
        Modulus::new(7681).unwrap()
    }

    #[test]
    fn mul_add_composes_mul_and_add() {
        let m = q();
        let a = vec![5u32, 7000, 0, 7680];
        let b = vec![3u32, 7000, 100, 7680];
        let d = vec![1u32, 2, 3, 4];
        let fused = mul_add(&a, &b, &d, &m).unwrap();
        let manual = add(&mul(&a, &b, &m).unwrap(), &d, &m).unwrap();
        assert_eq!(fused, manual);
    }

    #[test]
    fn assign_variants_match_pure() {
        let m = q();
        let a = vec![5u32, 7000, 1, 7680];
        let b = vec![3u32, 42, 100, 7680];
        let mut ma = a.clone();
        mul_assign(&mut ma, &b, &m).unwrap();
        assert_eq!(ma, mul(&a, &b, &m).unwrap());
        let mut sa = a.clone();
        add_assign(&mut sa, &b, &m).unwrap();
        assert_eq!(sa, add(&a, &b, &m).unwrap());
        let mut da = a.clone();
        sub_assign(&mut da, &b, &m).unwrap();
        assert_eq!(da, sub(&a, &b, &m).unwrap());
        let mut acc = vec![9u32, 9, 9, 9];
        mul_add_assign(&mut acc, &a, &b, &m).unwrap();
        assert_eq!(acc, mul_add(&a, &b, &[9, 9, 9, 9], &m).unwrap());
    }

    #[test]
    fn into_variants_match_pure() {
        let m = q();
        let a = vec![5u32, 7000, 1, 7680];
        let b = vec![3u32, 42, 100, 7680];
        let mut out = vec![0u32; 4];
        mul_into(&mut out, &a, &b, &m).unwrap();
        assert_eq!(out, mul(&a, &b, &m).unwrap());
        add_into(&mut out, &a, &b, &m).unwrap();
        assert_eq!(out, add(&a, &b, &m).unwrap());
        sub_into(&mut out, &a, &b, &m).unwrap();
        assert_eq!(out, sub(&a, &b, &m).unwrap());
    }

    #[test]
    fn sub_inverts_add() {
        let m = q();
        let a = vec![5u32, 7000, 1, 7680];
        let b = vec![3u32, 42, 100, 7680];
        assert_eq!(sub(&add(&a, &b, &m).unwrap(), &b, &m).unwrap(), a);
    }

    #[test]
    fn length_mismatch_is_an_error_not_a_panic() {
        let m = q();
        assert!(matches!(
            mul(&[1, 2], &[1], &m),
            Err(NttError::LengthMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(add(&[1], &[1, 2], &m).is_err());
        assert!(sub(&[1, 2, 3], &[1, 2], &m).is_err());
        assert!(mul_add(&[1, 2], &[1, 2], &[1], &m).is_err());
        let mut a = [1u32, 2];
        assert!(mul_assign(&mut a, &[1], &m).is_err());
        assert!(add_assign(&mut a, &[1, 2, 3], &m).is_err());
        let mut out = [0u32; 3];
        assert!(mul_into(&mut out, &[1, 2], &[1, 2], &m).is_err());
    }
}

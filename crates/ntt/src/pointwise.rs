//! Coefficient-wise (NTT-domain) arithmetic.
//!
//! In the NTT domain ring multiplication collapses to these O(n) loops —
//! the "coefficient-wise polynomial multiplications" of the paper's
//! encryption/decryption flow (§II-C).

use rlwe_zq::Modulus;

/// Pointwise product `c[i] = a[i] · b[i] mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
///
/// # Example
///
/// ```
/// use rlwe_zq::Modulus;
///
/// let q = Modulus::new(7681).unwrap();
/// let c = rlwe_ntt::pointwise::mul(&[2, 3], &[4, 5], &q);
/// assert_eq!(c, vec![8, 15]);
/// ```
pub fn mul(a: &[u32], b: &[u32], q: &Modulus) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "pointwise operands must match in length");
    a.iter().zip(b).map(|(&x, &y)| q.mul(x, y)).collect()
}

/// In-place pointwise product `a[i] ← a[i] · b[i] mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn mul_assign(a: &mut [u32], b: &[u32], q: &Modulus) {
    assert_eq!(a.len(), b.len(), "pointwise operands must match in length");
    for (x, &y) in a.iter_mut().zip(b) {
        *x = q.mul(*x, y);
    }
}

/// Pointwise sum `c[i] = a[i] + b[i] mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn add(a: &[u32], b: &[u32], q: &Modulus) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "pointwise operands must match in length");
    a.iter().zip(b).map(|(&x, &y)| q.add(x, y)).collect()
}

/// In-place pointwise sum `a[i] ← a[i] + b[i] mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn add_assign(a: &mut [u32], b: &[u32], q: &Modulus) {
    assert_eq!(a.len(), b.len(), "pointwise operands must match in length");
    for (x, &y) in a.iter_mut().zip(b) {
        *x = q.add(*x, y);
    }
}

/// Pointwise difference `c[i] = a[i] − b[i] mod q`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn sub(a: &[u32], b: &[u32], q: &Modulus) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "pointwise operands must match in length");
    a.iter().zip(b).map(|(&x, &y)| q.sub(x, y)).collect()
}

/// Fused multiply-add `c[i] = a[i] · b[i] + d[i] mod q` — the shape of the
/// ciphertext computations `ã∗ẽ₁ + ẽ₂` and `p̃∗ẽ₁ + NTT(e₃ + m̄)`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn mul_add(a: &[u32], b: &[u32], d: &[u32], q: &Modulus) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "pointwise operands must match in length");
    assert_eq!(a.len(), d.len(), "pointwise operands must match in length");
    a.iter()
        .zip(b)
        .zip(d)
        .map(|((&x, &y), &z)| q.add(q.mul(x, y), z))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Modulus {
        Modulus::new(7681).unwrap()
    }

    #[test]
    fn mul_add_composes_mul_and_add() {
        let m = q();
        let a = vec![5u32, 7000, 0, 7680];
        let b = vec![3u32, 7000, 100, 7680];
        let d = vec![1u32, 2, 3, 4];
        let fused = mul_add(&a, &b, &d, &m);
        let manual = add(&mul(&a, &b, &m), &d, &m);
        assert_eq!(fused, manual);
    }

    #[test]
    fn assign_variants_match_pure() {
        let m = q();
        let a = vec![5u32, 7000, 1, 7680];
        let b = vec![3u32, 42, 100, 7680];
        let mut ma = a.clone();
        mul_assign(&mut ma, &b, &m);
        assert_eq!(ma, mul(&a, &b, &m));
        let mut sa = a.clone();
        add_assign(&mut sa, &b, &m);
        assert_eq!(sa, add(&a, &b, &m));
    }

    #[test]
    fn sub_inverts_add() {
        let m = q();
        let a = vec![5u32, 7000, 1, 7680];
        let b = vec![3u32, 42, 100, 7680];
        assert_eq!(sub(&add(&a, &b, &m), &b, &m), a);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn length_mismatch_panics() {
        mul(&[1, 2], &[1], &q());
    }
}

//! NTT-friendly prime discovery.
//!
//! The paper fixes `q = 7681` (P1) and `q = 12289` (P2); this utility
//! answers the natural follow-up question — *where do such moduli come
//! from?* — by searching for primes `q ≡ 1 (mod 2n)`, which is exactly
//! the condition for a 2n-th root of unity (and hence an n-point
//! negacyclic NTT) to exist.

use rlwe_zq::is_prime_u64;

/// Returns the smallest prime `q ≥ min` with `q ≡ 1 (mod 2n)`,
/// or `None` if none exists below 2³¹.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 4.
///
/// # Example
///
/// ```
/// use rlwe_ntt::primes::find_ntt_prime;
///
/// // The paper's moduli are the smallest NTT-friendly primes above
/// // their respective lower bounds:
/// assert_eq!(find_ntt_prime(256, 7000), Some(7681));
/// assert_eq!(find_ntt_prime(512, 12289), Some(12289));
/// ```
pub fn find_ntt_prime(n: usize, min: u32) -> Option<u32> {
    assert!(
        n.is_power_of_two() && n >= 4,
        "ring dimension must be a power of two >= 4"
    );
    let step = 2 * n as u64;
    // First candidate ≥ min that is ≡ 1 mod 2n: k·2n + 1 with
    // k = ceil((min − 1) / 2n), and at least one step (k ≥ 1).
    let k = (min as u64).saturating_sub(1).div_ceil(step).max(1);
    let mut q = k * step + 1;
    while q < 1 << 31 {
        if is_prime_u64(q) {
            return Some(q as u32);
        }
        q += step;
    }
    None
}

/// Enumerates the first `count` NTT-friendly primes for dimension `n`
/// starting at `min`.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 4.
pub fn ntt_primes(n: usize, min: u32, count: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(count);
    let mut lo = min;
    while out.len() < count {
        match find_ntt_prime(n, lo) {
            Some(q) => {
                out.push(q);
                lo = q + 1;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NttPlan;

    #[test]
    fn finds_the_paper_moduli() {
        // 7681 is the smallest 512-friendly prime above 2^12;
        // 12289 the smallest 1024-friendly prime at all (above 2).
        assert_eq!(find_ntt_prime(256, 4096), Some(7681));
        assert_eq!(find_ntt_prime(512, 2), Some(12289));
    }

    #[test]
    fn all_results_produce_working_plans() {
        for n in [64usize, 256, 1024] {
            for q in ntt_primes(n, 2, 5) {
                let plan = NttPlan::new(n, q).expect("found prime must be usable");
                let a: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 1) % q).collect();
                let mut x = a.clone();
                plan.forward(&mut x);
                plan.inverse(&mut x);
                assert_eq!(x, a, "n={n}, q={q}");
            }
        }
    }

    #[test]
    fn respects_the_lower_bound_and_congruence() {
        for q in ntt_primes(128, 50_000, 10) {
            assert!(q >= 50_000);
            assert_eq!((q - 1) % 256, 0);
            assert!(rlwe_zq::is_prime_u64(q as u64));
        }
    }

    #[test]
    fn none_when_exhausted() {
        // Dimension 2^20 with min near the 2^31 cap: few or no candidates.
        let r = find_ntt_prime(1 << 20, (1 << 31) - (1 << 21));
        // Either a valid prime or None — both acceptable; just don't panic.
        if let Some(q) = r {
            assert_eq!((q as u64 - 1) % (1 << 21), 0);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        find_ntt_prime(100, 2);
    }
}

//! The paper's *parallel NTT*: three transforms advanced in one loop nest.
//!
//! Encryption needs three forward NTTs (of e₁, e₂ and e₃ + m̄). Running
//! them inside the same inner loop shares the twiddle-factor loads, the
//! `w ← w·w_m` updates and all loop/index bookkeeping between the three
//! data sets — the paper measures this at **8.3% faster** than three
//! sequential transforms (§IV-A), and stores the three coefficient sets in
//! consecutive memory so a single base pointer plus fixed offsets reaches
//! all of them (§III-D).
//!
//! On a host CPU the arithmetic is identical; the sharing shows up in the
//! M4F cost model (`rlwe-m4sim`), which charges the fused loop exactly once
//! for the shared work. This module provides the fused-loop implementations
//! whose outputs are bit-for-bit those of three separate transforms.

use rlwe_zq::packed::{pack, unpack};
use rlwe_zq::{add_mod, sub_mod};

use crate::plan::NttPlan;

/// Forward-transforms three polynomials in one fused loop nest.
///
/// Equivalent to calling [`NttPlan::forward`] on each slice; see the module
/// docs for why the fusion matters on the paper's target.
///
/// # Panics
///
/// Panics if any slice's length differs from `n`.
pub fn forward3(plan: &NttPlan, polys: [&mut [u32]; 3]) {
    let n = plan.n();
    let [a, b, c] = polys;
    assert_eq!(a.len(), n, "polynomial length must equal n");
    assert_eq!(b.len(), n, "polynomial length must equal n");
    assert_eq!(c.len(), n, "polynomial length must equal n");
    let q = plan.q();
    let tw = plan.forward_twiddles();
    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = tw[m + i]; // loaded once, used by all three data sets
            for j in j1..j1 + t {
                let va = s.mul(a[j + t], q);
                a[j + t] = sub_mod(a[j], va, q);
                a[j] = add_mod(a[j], va, q);

                let vb = s.mul(b[j + t], q);
                b[j + t] = sub_mod(b[j], vb, q);
                b[j] = add_mod(b[j], vb, q);

                let vc = s.mul(c[j + t], q);
                c[j + t] = sub_mod(c[j], vc, q);
                c[j] = add_mod(c[j], vc, q);
            }
        }
        m <<= 1;
    }
}

/// Packed-layout variant of [`forward3`]: three packed buffers of `n/2`
/// words each, transformed in one fused loop.
///
/// This is the configuration the paper actually benchmarks as
/// "Parallel NTT transform" in Table I (packed words *and* loop fusion).
///
/// # Panics
///
/// Panics if any buffer's length differs from `n/2`.
pub fn forward3_packed(plan: &NttPlan, buffers: [&mut [u32]; 3]) {
    let n = plan.n();
    let [a, b, c] = buffers;
    assert_eq!(a.len(), n / 2, "packed buffer must hold n/2 words");
    assert_eq!(b.len(), n / 2, "packed buffer must hold n/2 words");
    assert_eq!(c.len(), n / 2, "packed buffer must hold n/2 words");
    let q = plan.q();
    let tw = plan.forward_twiddles();
    let mut t = n;
    let mut m = 1usize;
    while m < n / 2 {
        t >>= 1;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = tw[m + i];
            let mut j = j1;
            while j < j1 + t {
                for buf in [&mut *a, &mut *b, &mut *c] {
                    let w1 = buf[j / 2];
                    let w2 = buf[(j + t) / 2];
                    let (u0, u1) = unpack(w1);
                    let (v0, v1) = unpack(w2);
                    let x0 = s.mul(v0, q);
                    let x1 = s.mul(v1, q);
                    buf[j / 2] = pack(add_mod(u0, x0, q), add_mod(u1, x1, q));
                    buf[(j + t) / 2] = pack(sub_mod(u0, x0, q), sub_mod(u1, x1, q));
                }
                j += 2;
            }
        }
        m <<= 1;
    }
    // Final intra-word stage shared across the three buffers.
    for i in 0..n / 2 {
        let s = tw[m + i];
        for buf in [&mut *a, &mut *b, &mut *c] {
            let (u, v) = unpack(buf[i]);
            let x = s.mul(v, q);
            buf[i] = pack(add_mod(u, x, q), sub_mod(u, x, q));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{forward_packed, pack_coeffs, unpack_coeffs};

    fn demo_poly(n: usize, q: u32, seed: u32) -> Vec<u32> {
        (0..n as u32).map(|i| (i * seed + seed) % q).collect()
    }

    #[test]
    fn fused_equals_three_separate() {
        for &(n, q) in &[(256usize, 7681u32), (512, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let mut a = demo_poly(n, q, 3);
            let mut b = demo_poly(n, q, 7);
            let mut c = demo_poly(n, q, 11);
            let ea = plan.forward_copy(&a);
            let eb = plan.forward_copy(&b);
            let ec = plan.forward_copy(&c);
            forward3(&plan, [&mut a, &mut b, &mut c]);
            assert_eq!(a, ea);
            assert_eq!(b, eb);
            assert_eq!(c, ec);
        }
    }

    #[test]
    fn fused_packed_equals_three_separate_packed() {
        let plan = NttPlan::new(256, 7681).unwrap();
        let pa = demo_poly(256, 7681, 5);
        let pb = demo_poly(256, 7681, 23);
        let pc = demo_poly(256, 7681, 41);
        let mut wa = pack_coeffs(&pa);
        let mut wb = pack_coeffs(&pb);
        let mut wc = pack_coeffs(&pc);
        let mut ea = wa.clone();
        let mut eb = wb.clone();
        let mut ec = wc.clone();
        forward_packed(&plan, &mut ea);
        forward_packed(&plan, &mut eb);
        forward_packed(&plan, &mut ec);
        forward3_packed(&plan, [&mut wa, &mut wb, &mut wc]);
        assert_eq!(wa, ea);
        assert_eq!(wb, eb);
        assert_eq!(wc, ec);
        // And the packed result matches the scalar transform.
        assert_eq!(unpack_coeffs(&wa), plan.forward_copy(&pa));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let plan = NttPlan::new(16, 12289).unwrap();
        let mut a = vec![0u32; 16];
        let mut b = vec![0u32; 8];
        let mut c = vec![0u32; 16];
        forward3(&plan, [&mut a, &mut b, &mut c]);
    }
}

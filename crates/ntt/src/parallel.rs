//! The paper's *parallel NTT*: three transforms advanced in one loop nest.
//!
//! Encryption needs three forward NTTs (of e₁, e₂ and e₃ + m̄). Running
//! them inside the same inner loop shares the twiddle-factor loads, the
//! `w ← w·w_m` updates and all loop/index bookkeeping between the three
//! data sets — the paper measures this at **8.3% faster** than three
//! sequential transforms (§IV-A), and stores the three coefficient sets in
//! consecutive memory so a single base pointer plus fixed offsets reaches
//! all of them (§III-D).
//!
//! On a host CPU the arithmetic is identical; the sharing shows up in the
//! M4F cost model (`rlwe-m4sim`), which charges the fused loop exactly once
//! for the shared work. This module provides the fused-loop implementations
//! whose outputs are bit-for-bit those of three separate transforms — and
//! like those, the butterflies are lazy ([`rlwe_zq::lazy`]): coefficients
//! cross stages in `[0, 4q)` and a fused normalization pass restores
//! `[0, q)` once at the end.

use rlwe_zq::packed::{pack, unpack};
use rlwe_zq::{lazy, Reducer};

use crate::plan::NttPlan;

/// Forward-transforms three polynomials in one fused loop nest.
///
/// Equivalent to calling [`NttPlan::forward`] on each slice; see the module
/// docs for why the fusion matters on the paper's target.
///
/// # Panics
///
/// Panics if any slice's length differs from `n`.
pub fn forward3<R: Reducer>(plan: &NttPlan<R>, polys: [&mut [u32]; 3]) {
    let n = plan.n();
    let [a, b, c] = polys;
    assert_eq!(a.len(), n, "polynomial length must equal n");
    assert_eq!(b.len(), n, "polynomial length must equal n");
    assert_eq!(c.len(), n, "polynomial length must equal n");
    let q = plan.q();
    let two_q = plan.two_q();
    let r = *plan.reducer();
    let tw = plan.forward_twiddles();
    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = tw[m + i]; // loaded once, used by all three data sets
            for j in j1..j1 + t {
                let ua = r.reduce_once_2q(a[j]);
                let va = s.mul_lazy(a[j + t], q);
                a[j] = lazy::add_lazy(ua, va);
                a[j + t] = lazy::sub_lazy(ua, va, two_q);

                let ub = r.reduce_once_2q(b[j]);
                let vb = s.mul_lazy(b[j + t], q);
                b[j] = lazy::add_lazy(ub, vb);
                b[j + t] = lazy::sub_lazy(ub, vb, two_q);

                let uc = r.reduce_once_2q(c[j]);
                let vc = s.mul_lazy(c[j + t], q);
                c[j] = lazy::add_lazy(uc, vc);
                c[j + t] = lazy::sub_lazy(uc, vc, two_q);
            }
        }
        m <<= 1;
    }
    // Fused normalization sweep: one pass restores [0, q) for all three.
    for j in 0..n {
        a[j] = r.normalize4(a[j]);
        b[j] = r.normalize4(b[j]);
        c[j] = r.normalize4(c[j]);
    }
}

/// Packed-layout variant of [`forward3`]: three packed buffers of `n/2`
/// words each, transformed in one fused loop.
///
/// This is the configuration the paper actually benchmarks as
/// "Parallel NTT transform" in Table I (packed words *and* loop fusion).
///
/// # Panics
///
/// Panics if any buffer's length differs from `n/2`, or if `q ≥ 2¹⁴`
/// (the packed lazy domain must fit a halfword lane).
pub fn forward3_packed<R: Reducer>(plan: &NttPlan<R>, buffers: [&mut [u32]; 3]) {
    let n = plan.n();
    let [a, b, c] = buffers;
    assert_eq!(a.len(), n / 2, "packed buffer must hold n/2 words");
    assert_eq!(b.len(), n / 2, "packed buffer must hold n/2 words");
    assert_eq!(c.len(), n / 2, "packed buffer must hold n/2 words");
    let q = plan.q();
    crate::packed::assert_packed_q(q);
    let two_q = plan.two_q();
    let r = *plan.reducer();
    let tw = plan.forward_twiddles();
    let mut t = n;
    let mut m = 1usize;
    while m < n / 2 {
        t >>= 1;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = tw[m + i];
            let mut j = j1;
            while j < j1 + t {
                for buf in [&mut *a, &mut *b, &mut *c] {
                    let (u0, u1) = unpack(buf[j / 2]);
                    let (v0, v1) = unpack(buf[(j + t) / 2]);
                    let u0 = r.reduce_once_2q(u0);
                    let u1 = r.reduce_once_2q(u1);
                    let x0 = s.mul_lazy(v0, q);
                    let x1 = s.mul_lazy(v1, q);
                    buf[j / 2] = pack(lazy::add_lazy(u0, x0), lazy::add_lazy(u1, x1));
                    buf[(j + t) / 2] =
                        pack(lazy::sub_lazy(u0, x0, two_q), lazy::sub_lazy(u1, x1, two_q));
                }
                j += 2;
            }
        }
        m <<= 1;
    }
    // Final intra-word stage shared across the three buffers, normalizing
    // each output into [0, q) on the way out.
    for i in 0..n / 2 {
        let s = tw[m + i];
        for buf in [&mut *a, &mut *b, &mut *c] {
            let (u, v) = unpack(buf[i]);
            let u = r.reduce_once_2q(u);
            let x = s.mul_lazy(v, q);
            buf[i] = pack(
                r.normalize4(lazy::add_lazy(u, x)),
                r.normalize4(lazy::sub_lazy(u, x, two_q)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{forward_packed, pack_coeffs, unpack_coeffs};

    fn demo_poly(n: usize, q: u32, seed: u32) -> Vec<u32> {
        (0..n as u32).map(|i| (i * seed + seed) % q).collect()
    }

    #[test]
    fn fused_equals_three_separate() {
        for &(n, q) in &[(256usize, 7681u32), (512, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let mut a = demo_poly(n, q, 3);
            let mut b = demo_poly(n, q, 7);
            let mut c = demo_poly(n, q, 11);
            let ea = plan.forward_copy(&a);
            let eb = plan.forward_copy(&b);
            let ec = plan.forward_copy(&c);
            forward3(&plan, [&mut a, &mut b, &mut c]);
            assert_eq!(a, ea);
            assert_eq!(b, eb);
            assert_eq!(c, ec);
        }
    }

    #[test]
    fn fused_equals_three_separate_on_worst_case_vectors() {
        let (n, q) = (256usize, 12289u32);
        let plan = NttPlan::new(n, q).unwrap();
        let mut a = vec![q - 1; n];
        let mut b = vec![0u32; n];
        let mut c = demo_poly(n, q, 13);
        let ea = plan.forward_copy(&a);
        let eb = plan.forward_copy(&b);
        let ec = plan.forward_copy(&c);
        forward3(&plan, [&mut a, &mut b, &mut c]);
        assert_eq!(a, ea);
        assert_eq!(b, eb);
        assert_eq!(c, ec);
        assert!(a.iter().all(|&x| x < q), "outputs must be canonical");
    }

    #[test]
    fn fused_packed_equals_three_separate_packed() {
        let plan = NttPlan::new(256, 7681).unwrap();
        let pa = demo_poly(256, 7681, 5);
        let pb = demo_poly(256, 7681, 23);
        let pc = demo_poly(256, 7681, 41);
        let mut wa = pack_coeffs(&pa);
        let mut wb = pack_coeffs(&pb);
        let mut wc = pack_coeffs(&pc);
        let mut ea = wa.clone();
        let mut eb = wb.clone();
        let mut ec = wc.clone();
        forward_packed(&plan, &mut ea);
        forward_packed(&plan, &mut eb);
        forward_packed(&plan, &mut ec);
        forward3_packed(&plan, [&mut wa, &mut wb, &mut wc]);
        assert_eq!(wa, ea);
        assert_eq!(wb, eb);
        assert_eq!(wc, ec);
        // And the packed result matches the scalar transform.
        assert_eq!(unpack_coeffs(&wa), plan.forward_copy(&pa));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let plan = NttPlan::new(16, 12289).unwrap();
        let mut a = vec![0u32; 16];
        let mut b = vec![0u32; 8];
        let mut c = vec![0u32; 16];
        forward3(&plan, [&mut a, &mut b, &mut c]);
    }
}

//! Packed-word NTT: two coefficients per 32-bit word, inner loop unrolled
//! by two — the paper's §III-D / Algorithm 4, on lazy butterflies.
//!
//! On the Cortex-M4F every memory access costs 2 cycles regardless of
//! width, so storing 13/14-bit coefficients as halfword *pairs* halves the
//! number of loads and stores in the butterfly loop, and unrolling the loop
//! two-fold halves pointer arithmetic and index bookkeeping. This module
//! reproduces that data layout faithfully so the M4F cost model can charge
//! it correctly; on a host CPU the win is smaller but still measurable
//! (see the `ntt` Criterion bench).
//!
//! Layout invariant: word `i` holds coefficients `a[2i]` (low halfword) and
//! `a[2i+1]` (high halfword) of the *current* ordering — natural before a
//! forward transform, bit-reversed after it.
//!
//! In this layout every butterfly stage with span `t ≥ 2` touches two
//! *whole* words per iteration (two butterflies sharing one twiddle), and
//! the final forward stage (span 1) becomes an *intra-word* butterfly —
//! exactly the structure of the epilogue of the paper's Algorithm 4
//! (the loop over pairs `(A[2k], A[2k+1])`).
//!
//! Lazy-domain bound: between stages each halfword lane carries a
//! `[0, 4q)` (forward) / `[0, 2q)` (inverse) coefficient, so the layout
//! requires `4q < 2¹⁶`, i.e. **`q < 2¹⁴`** — satisfied with room to spare
//! by both paper moduli (7681 and 12289). The transforms assert it.

use rlwe_zq::packed::{pack, unpack};
use rlwe_zq::{lazy, Reducer};

use crate::plan::NttPlan;

/// Largest modulus the packed lazy butterflies support: `4q` must fit a
/// halfword lane.
pub const MAX_PACKED_Q: u32 = 1 << 14;

/// Asserts the packed lazy-domain precondition `4q < 2¹⁶` — shared by
/// every halfword-lane transform (packed, SWAR, fused parallel).
#[inline]
pub(crate) fn assert_packed_q(q: u32) {
    assert!(
        q < MAX_PACKED_Q,
        "packed lazy butterflies need 4q < 2^16 (q < 16384), got q = {q}"
    );
}

/// Packs a natural-order coefficient slice into the two-per-word layout.
///
/// # Panics
///
/// Panics if `a.len()` is odd or if a coefficient does not fit in 16 bits.
pub fn pack_coeffs(a: &[u32]) -> Vec<u32> {
    rlwe_zq::packed::pack_slice(a)
}

/// Expands a packed word slice back to flat coefficients.
pub fn unpack_coeffs(words: &[u32]) -> Vec<u32> {
    rlwe_zq::packed::unpack_slice(words)
}

/// In-place forward negacyclic NTT on packed words.
///
/// Functionally identical to [`NttPlan::forward`] — lazy `[0, 4q)`
/// stages, fully reduced output; the only difference is the memory
/// layout (n/2 words instead of n coefficient slots). Normalization is
/// folded into the final intra-word stage, so no extra sweep runs.
///
/// # Panics
///
/// Panics if `words.len() != n/2` or `q ≥ 2¹⁴`.
pub fn forward_packed<R: Reducer>(plan: &NttPlan<R>, words: &mut [u32]) {
    let n = plan.n();
    assert_eq!(words.len(), n / 2, "packed buffer must hold n/2 words");
    let q = plan.q();
    assert_packed_q(q);
    let two_q = plan.two_q();
    let r = *plan.reducer();
    let tw = plan.forward_twiddles();
    let mut t = n;
    let mut m = 1usize;
    // Word-level stages: span t >= 2 means both coefficients of a word sit
    // on the same side of every butterfly, so each iteration processes two
    // butterflies from two whole-word loads (the 2x unroll of Alg. 4).
    while m < n / 2 {
        t >>= 1;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = tw[m + i];
            let mut j = j1;
            while j < j1 + t {
                let (u0, u1) = unpack(words[j / 2]);
                let (v0, v1) = unpack(words[(j + t) / 2]);
                let u0 = r.reduce_once_2q(u0);
                let u1 = r.reduce_once_2q(u1);
                let x0 = s.mul_lazy(v0, q);
                let x1 = s.mul_lazy(v1, q);
                words[j / 2] = pack(lazy::add_lazy(u0, x0), lazy::add_lazy(u1, x1));
                words[(j + t) / 2] =
                    pack(lazy::sub_lazy(u0, x0, two_q), lazy::sub_lazy(u1, x1, two_q));
                j += 2;
            }
        }
        m <<= 1;
    }
    // Final stage (t = 1): intra-word butterflies, one twiddle per word —
    // the epilogue of the paper's Algorithm 4 — with the [0, q)
    // normalization folded into the store.
    debug_assert_eq!(m, n / 2);
    for (i, w) in words.iter_mut().enumerate() {
        let (u, v) = unpack(*w);
        let s = tw[m + i];
        let u = r.reduce_once_2q(u);
        let x = s.mul_lazy(v, q);
        *w = pack(
            r.normalize4(lazy::add_lazy(u, x)),
            r.normalize4(lazy::sub_lazy(u, x, two_q)),
        );
    }
}

/// In-place inverse negacyclic NTT on packed words, including the `n⁻¹`
/// post-scaling — folded into the final word stage's twiddles, exactly
/// as in [`NttPlan::inverse`].
///
/// # Panics
///
/// Panics if `words.len() != n/2` or `q ≥ 2¹⁴`.
pub fn inverse_packed<R: Reducer>(plan: &NttPlan<R>, words: &mut [u32]) {
    let n = plan.n();
    assert_eq!(words.len(), n / 2, "packed buffer must hold n/2 words");
    let q = plan.q();
    assert_packed_q(q);
    let two_q = plan.two_q();
    let r = *plan.reducer();
    let tw = plan.inverse_twiddles();
    // First stage (t = 1): intra-word butterflies into the [0, 2q) lazy
    // domain (both lanes stay under 2¹⁵).
    let h = n / 2;
    for (i, w) in words.iter_mut().enumerate() {
        let (u, v) = unpack(*w);
        let s = tw[h + i];
        *w = pack(
            r.reduce_once_2q(lazy::add_lazy(u, v)),
            s.mul_lazy(lazy::sub_lazy(u, v, two_q), q),
        );
    }
    // Word-level lazy stages down to (and excluding) the last.
    let mut t = 2usize;
    let mut m = n / 2;
    while m > 2 {
        let h = m >> 1;
        let mut j1 = 0usize;
        for i in 0..h {
            let s = tw[h + i];
            let mut j = j1;
            while j < j1 + t {
                let (u0, u1) = unpack(words[j / 2]);
                let (v0, v1) = unpack(words[(j + t) / 2]);
                words[j / 2] = pack(
                    r.reduce_once_2q(lazy::add_lazy(u0, v0)),
                    r.reduce_once_2q(lazy::add_lazy(u1, v1)),
                );
                words[(j + t) / 2] = pack(
                    s.mul_lazy(lazy::sub_lazy(u0, v0, two_q), q),
                    s.mul_lazy(lazy::sub_lazy(u1, v1, two_q), q),
                );
                j += 2;
            }
            j1 += 2 * t;
        }
        t <<= 1;
        m = h;
    }
    // Merged final stage: butterfly × n⁻¹ scaling in one pass, outputs
    // normalized to [0, q) — no separate scaling sweep over the words.
    debug_assert_eq!(t, n / 2);
    let n_inv = plan.n_inv_pair();
    let s_merged = plan.merged_inverse_twiddle();
    let mut j = 0usize;
    while j < t {
        let (u0, u1) = unpack(words[j / 2]);
        let (v0, v1) = unpack(words[(j + t) / 2]);
        words[j / 2] = pack(
            r.reduce_once(n_inv.mul_lazy(lazy::add_lazy(u0, v0), q)),
            r.reduce_once(n_inv.mul_lazy(lazy::add_lazy(u1, v1), q)),
        );
        words[(j + t) / 2] = pack(
            r.reduce_once(s_merged.mul_lazy(lazy::sub_lazy(u0, v0, two_q), q)),
            r.reduce_once(s_merged.mul_lazy(lazy::sub_lazy(u1, v1, two_q), q)),
        );
        j += 2;
    }
}

/// Full negacyclic multiplication in the packed layout.
///
/// # Panics
///
/// Panics if either input's length differs from `n/2` words.
pub fn negacyclic_mul_packed<R: Reducer>(plan: &NttPlan<R>, a: &[u32], b: &[u32]) -> Vec<u32> {
    let r = *plan.reducer();
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    forward_packed(plan, &mut fa);
    forward_packed(plan, &mut fb);
    let mut c: Vec<u32> = fa
        .iter()
        .zip(&fb)
        .map(|(&wa, &wb)| {
            let (a0, a1) = unpack(wa);
            let (b0, b1) = unpack(wb);
            pack(r.mul(a0, b0), r.mul(a1, b1))
        })
        .collect();
    inverse_packed(plan, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_poly(n: usize, q: u32, seed: u32) -> Vec<u32> {
        (0..n as u32).map(|i| (i * seed + 13) % q).collect()
    }

    #[test]
    fn packed_forward_matches_scalar() {
        for &(n, q) in &[(256usize, 7681u32), (512, 12289), (16, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let a = demo_poly(n, q, 37);
            let scalar = plan.forward_copy(&a);
            let mut words = pack_coeffs(&a);
            forward_packed(&plan, &mut words);
            assert_eq!(unpack_coeffs(&words), scalar, "n={n} q={q}");
        }
    }

    #[test]
    fn packed_inverse_matches_scalar() {
        for &(n, q) in &[(256usize, 7681u32), (512, 12289), (4, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let a = demo_poly(n, q, 91);
            let scalar = plan.inverse_copy(&a);
            let mut words = pack_coeffs(&a);
            inverse_packed(&plan, &mut words);
            assert_eq!(unpack_coeffs(&words), scalar, "n={n} q={q}");
        }
    }

    #[test]
    fn packed_round_trip() {
        let plan = NttPlan::new(128, 7681).unwrap();
        let a = demo_poly(128, 7681, 55);
        let mut words = pack_coeffs(&a);
        forward_packed(&plan, &mut words);
        inverse_packed(&plan, &mut words);
        assert_eq!(unpack_coeffs(&words), a);
    }

    #[test]
    fn packed_outputs_are_fully_reduced_for_worst_case_inputs() {
        // All-(q-1) vectors drive the lazy domain to its widest; every
        // stored halfword must still come out canonical.
        for &(n, q) in &[(256usize, 7681u32), (512, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let mut words = pack_coeffs(&vec![q - 1; n]);
            forward_packed(&plan, &mut words);
            assert!(unpack_coeffs(&words).iter().all(|&c| c < q), "fwd n={n}");
            inverse_packed(&plan, &mut words);
            assert!(unpack_coeffs(&words).iter().all(|&c| c < q), "inv n={n}");
        }
    }

    #[test]
    fn packed_mul_matches_schoolbook() {
        let n = 64;
        let q = 7681;
        let plan = NttPlan::new(n, q).unwrap();
        let a = demo_poly(n, q, 3);
        let b = demo_poly(n, q, 19);
        let got = unpack_coeffs(&negacyclic_mul_packed(
            &plan,
            &pack_coeffs(&a),
            &pack_coeffs(&b),
        ));
        assert_eq!(got, crate::schoolbook::negacyclic_mul(&a, &b, q));
    }

    #[test]
    #[should_panic(expected = "n/2 words")]
    fn wrong_length_panics() {
        let plan = NttPlan::new(16, 12289).unwrap();
        let mut words = vec![0u32; 16]; // should be 8
        forward_packed(&plan, &mut words);
    }

    #[test]
    #[should_panic(expected = "4q < 2^16")]
    fn oversized_modulus_panics() {
        // 40961 = 1 + 2^13·5 is prime and NTT-friendly for n = 16, but
        // its lazy domain does not fit a halfword lane.
        let plan = NttPlan::new(16, 40961).unwrap();
        let mut words = vec![0u32; 8];
        forward_packed(&plan, &mut words);
    }
}

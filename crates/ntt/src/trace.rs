//! Deterministic operation-count tracing for the NTT kernels — the
//! transform-layer sibling of `rlwe_sampler::ct::CtCdtSampler::sample_traced`.
//!
//! The lazy-reduction butterflies are branch-free by construction, so the
//! number of masked reductions, lazy twiddle multiplies and final
//! normalizations a transform performs is a function of `n` alone — never
//! of the coefficient values. [`NttOpTrace`] makes that property *testable*:
//! `NttPlan::forward_traced`/`inverse_traced` run the exact same generic
//! kernel as the untraced entry points (monomorphised over a recorder that
//! compiles to nothing in the untraced case) and return the exact counts,
//! which `crates/leakage/tests/invariance.rs` pins in CI against the
//! closed forms below for all-zero, all-`q−1` and random inputs alike.

/// Sink for per-operation events inside the butterfly kernels.
///
/// The no-op implementation ([`NoTrace`]) is what the public `forward`/
/// `inverse` entry points instantiate; with every method `#[inline]` and
/// empty, the recorder monomorphises away completely, so tracing costs
/// the hot path nothing.
pub(crate) trait OpRecorder {
    /// One butterfly executed.
    #[inline(always)]
    fn butterfly(&mut self) {}
    /// One masked (branch-free) conditional subtraction executed inside
    /// the stage loops.
    #[inline(always)]
    fn masked_reduction(&mut self) {}
    /// One lazy Shoup twiddle multiplication (`[0,2q)` result, no final
    /// correction) executed.
    #[inline(always)]
    fn lazy_mul(&mut self) {}
    /// One output coefficient normalized into canonical `[0, q)`.
    #[inline(always)]
    fn normalization(&mut self) {}
}

/// The zero-cost recorder behind the untraced entry points.
pub(crate) struct NoTrace;

impl OpRecorder for NoTrace {}

/// Exact operation counts of one transform, by kind.
///
/// All four counts are determined by the ring dimension alone; the
/// closed forms are [`NttOpTrace::expected_forward`] and
/// [`NttOpTrace::expected_inverse`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NttOpTrace {
    /// Butterflies executed (`(n/2)·log₂n` for either direction).
    pub butterflies: u64,
    /// Masked in-loop conditional subtractions.
    pub masked_reductions: u64,
    /// Lazy Shoup twiddle multiplies.
    pub lazy_muls: u64,
    /// Final `[0, q)` normalizations.
    pub normalizations: u64,
}

impl OpRecorder for NttOpTrace {
    #[inline(always)]
    fn butterfly(&mut self) {
        self.butterflies += 1;
    }
    #[inline(always)]
    fn masked_reduction(&mut self) {
        self.masked_reductions += 1;
    }
    #[inline(always)]
    fn lazy_mul(&mut self) {
        self.lazy_muls += 1;
    }
    #[inline(always)]
    fn normalization(&mut self) {
        self.normalizations += 1;
    }
}

impl NttOpTrace {
    /// The exact trace of a forward transform of dimension `n`: every one
    /// of the `(n/2)·log₂n` butterflies performs one masked reduction and
    /// one lazy multiply, and each of the `n` outputs is normalized once
    /// at the end.
    pub fn expected_forward(n: usize) -> Self {
        let log_n = n.trailing_zeros() as u64;
        let butterflies = (n as u64 / 2) * log_n;
        Self {
            butterflies,
            masked_reductions: butterflies,
            lazy_muls: butterflies,
            normalizations: n as u64,
        }
    }

    /// The exact trace of an inverse transform of dimension `n`: the
    /// first `log₂n − 1` stages pay one masked reduction and one lazy
    /// multiply per butterfly; the merged final stage (butterfly ×
    /// `n⁻¹` scaling folded together) pays two lazy multiplies and two
    /// normalizations per butterfly instead.
    pub fn expected_inverse(n: usize) -> Self {
        let log_n = n.trailing_zeros() as u64;
        let half = n as u64 / 2;
        Self {
            butterflies: half * log_n,
            masked_reductions: half * (log_n - 1),
            lazy_muls: half * (log_n - 1) + n as u64,
            normalizations: n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_hand_counts_for_small_n() {
        // n = 8, log n = 3: forward = 12 butterflies.
        let f = NttOpTrace::expected_forward(8);
        assert_eq!(f.butterflies, 12);
        assert_eq!(f.masked_reductions, 12);
        assert_eq!(f.lazy_muls, 12);
        assert_eq!(f.normalizations, 8);
        // Inverse: 2 lazy stages of 4 butterflies + merged final stage.
        let i = NttOpTrace::expected_inverse(8);
        assert_eq!(i.butterflies, 12);
        assert_eq!(i.masked_reductions, 8);
        assert_eq!(i.lazy_muls, 8 + 8);
        assert_eq!(i.normalizations, 8);
    }
}

//! [`AnyNttPlan`]: the one-shot dispatch point between the specialized
//! and generic NTT plans.
//!
//! The kernels in this crate are generic over [`Reducer`], so the paper's
//! P1/P2 moduli compile into fully monomorphized transforms with
//! immediate constants. Something still has to pick the instantiation at
//! runtime from a `(n, q)` pair — exactly once, at construction, never
//! inside a kernel. `AnyNttPlan` is that single dispatch point: an enum
//! over the three sealed reducer instantiations with the same call
//! surface as [`NttPlan`], selected by [`AnyNttPlan::new`]
//! (`q = 7681 → Q7681`, `q = 12289 → Q12289`, anything else → the
//! runtime-Barrett fallback).
//!
//! `rlwe-core`'s `RlweContext` stores one of these and forwards every
//! transform through it; the variant actually selected is observable via
//! [`AnyNttPlan::kind`], which CI pins for P1/P2.

use rlwe_zq::reduce::{BarrettGeneric, Q12289, Q7681};
#[cfg(doc)]
use rlwe_zq::Reducer;
use rlwe_zq::{Modulus, ReducerKind};

use crate::error::NttError;
use crate::plan::NttPlan;
use crate::trace::NttOpTrace;
use crate::PolyScratch;
use std::sync::OnceLock;

/// The NTT backend labels `rlwe_ntt_dispatch_total` can carry:
/// construction-time selections report the context's configured backend
/// (`reference`/`packed`/`swar`/`avx2`), and the engine's grouped
/// transforms additionally count one `interleaved` dispatch per
/// interleaved transform group.
pub const BACKEND_LABELS: [&str; 5] = ["reference", "packed", "swar", "avx2", "interleaved"];

/// Pre-resolved `rlwe_ntt_dispatch_total{ntt_backend,reducer_kind}`
/// counters, one per (instantiation × backend) pair: dispatch decisions
/// are counted in the global observability registry so the P1/P2
/// specialization claim — and now the selected NTT backend — is visible
/// at runtime, not only in CI assertions.
fn dispatch_counter(kind: ReducerKind, backend: &str) -> &'static rlwe_obs::Counter {
    static COUNTERS: OnceLock<Vec<rlwe_obs::Counter>> = OnceLock::new();
    const KINDS: [ReducerKind; 3] = [
        ReducerKind::Q7681,
        ReducerKind::Q12289,
        ReducerKind::Barrett,
    ];
    let all = COUNTERS.get_or_init(|| {
        let mut v = Vec::with_capacity(KINDS.len() * BACKEND_LABELS.len());
        for k in KINDS {
            for b in BACKEND_LABELS {
                v.push(rlwe_obs::global().counter(
                    "rlwe_ntt_dispatch_total",
                    "AnyNttPlan dispatch selections by NTT backend and reducer instantiation.",
                    &[("ntt_backend", b), ("reducer_kind", k.label())],
                ));
            }
        }
        v
    });
    let ki = match kind {
        ReducerKind::Q7681 => 0,
        ReducerKind::Q12289 => 1,
        ReducerKind::Barrett => 2,
    };
    // Unknown labels fall back to `reference` rather than panicking —
    // the label set is closed over BACKEND_LABELS.
    let bi = BACKEND_LABELS
        .iter()
        .position(|&b| b == backend)
        .unwrap_or(0);
    let idx = ki * BACKEND_LABELS.len() + bi;
    all.get(idx).unwrap_or(&all[0])
}

/// An [`NttPlan`] over whichever [`Reducer`] matches its modulus —
/// specialized for the paper's primes, runtime Barrett otherwise.
///
/// # Example
///
/// ```
/// use rlwe_ntt::AnyNttPlan;
/// use rlwe_zq::ReducerKind;
///
/// # fn main() -> Result<(), rlwe_ntt::NttError> {
/// let p1 = AnyNttPlan::new(256, 7681)?;
/// assert_eq!(p1.kind(), ReducerKind::Q7681);
/// let other = AnyNttPlan::new(256, 8383489)?;
/// assert_eq!(other.kind(), ReducerKind::Barrett);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum AnyNttPlan {
    /// The monomorphized `q = 7681` plan (parameter set P1).
    Q7681(NttPlan<Q7681>),
    /// The monomorphized `q = 12289` plan (parameter set P2).
    Q12289(NttPlan<Q12289>),
    /// The runtime-Barrett plan for every other prime.
    Generic(NttPlan<BarrettGeneric>),
}

/// Runs `$body` with `$p` bound to the variant's typed plan — each arm
/// monomorphizes separately, so the expansion *is* the dispatch.
macro_rules! with_plan {
    ($self:expr, |$p:ident| $body:expr) => {
        match $self {
            AnyNttPlan::Q7681($p) => $body,
            AnyNttPlan::Q12289($p) => $body,
            AnyNttPlan::Generic($p) => $body,
        }
    };
}

impl AnyNttPlan {
    /// Builds the plan for `(n, q)`, selecting the specialized reducer
    /// when `q` is one of the paper's primes.
    ///
    /// # Errors
    ///
    /// Exactly those of [`NttPlan::new`] — selection never changes which
    /// `(n, q)` pairs are accepted.
    pub fn new(n: usize, q: u32) -> Result<Self, NttError> {
        Ok(Self::promote(NttPlan::new(n, q)?))
    }

    /// Wraps an already-built generic plan, upgrading it to the
    /// specialized instantiation when its modulus is one of the paper's
    /// primes. The twiddle tables are moved, not recomputed — callers
    /// that already hold a generic plan (e.g. `RlweContext`, which keeps
    /// one for its `plan()` accessor) pay no second construction.
    pub fn promote(plan: NttPlan) -> Self {
        Self::promote_for_backend(plan, "reference")
    }

    /// [`AnyNttPlan::promote`] with an explicit NTT-backend label for the
    /// dispatch metric: `rlwe-core`'s context builder passes its
    /// configured backend (`reference`/`packed`/`swar`/`avx2`) so
    /// `rlwe_ntt_dispatch_total{ntt_backend,reducer_kind}` reports which
    /// transform implementation the selected plan will actually serve.
    pub fn promote_for_backend(plan: NttPlan, backend: &str) -> Self {
        let selected = match plan.q() {
            Q7681::Q => AnyNttPlan::Q7681(plan.retag(Q7681)),
            Q12289::Q => AnyNttPlan::Q12289(plan.retag(Q12289)),
            _ => AnyNttPlan::Generic(plan),
        };
        dispatch_counter(selected.kind(), backend).inc();
        selected
    }

    /// Wraps an already-built generic plan *without* promotion — the
    /// escape hatch behind `rlwe-core`'s `ReducerPreference::Generic`.
    /// Still counted (as a Barrett dispatch) in the observability
    /// registry, so every constructed dispatch plan shows up in
    /// `rlwe_ntt_dispatch_total`.
    pub fn generic(plan: NttPlan) -> Self {
        Self::generic_for_backend(plan, "reference")
    }

    /// [`AnyNttPlan::generic`] with an explicit NTT-backend label (see
    /// [`AnyNttPlan::promote_for_backend`]).
    pub fn generic_for_backend(plan: NttPlan, backend: &str) -> Self {
        dispatch_counter(ReducerKind::Barrett, backend).inc();
        AnyNttPlan::Generic(plan)
    }

    /// Counts one interleaved-group transform dispatch for this plan's
    /// reducer in `rlwe_ntt_dispatch_total{ntt_backend="interleaved"}` —
    /// called by the engine's batch router once per interleaved
    /// transform group, making the grouped fast path observable.
    pub fn record_interleaved_dispatch(&self) {
        dispatch_counter(self.kind(), "interleaved").inc();
    }

    /// Which reducer instantiation this plan dispatches to.
    #[inline]
    pub fn kind(&self) -> ReducerKind {
        match self {
            AnyNttPlan::Q7681(_) => ReducerKind::Q7681,
            AnyNttPlan::Q12289(_) => ReducerKind::Q12289,
            AnyNttPlan::Generic(_) => ReducerKind::Barrett,
        }
    }

    /// The ring dimension n.
    #[inline]
    pub fn n(&self) -> usize {
        with_plan!(self, |p| p.n())
    }

    /// log₂(n).
    #[inline]
    pub fn log_n(&self) -> u32 {
        with_plan!(self, |p| p.log_n())
    }

    /// The raw modulus value q.
    #[inline]
    pub fn q(&self) -> u32 {
        with_plan!(self, |p| p.q())
    }

    /// The modulus context.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        with_plan!(self, |p| p.modulus())
    }

    /// The 2n-th primitive root ψ used by this plan.
    #[inline]
    pub fn psi(&self) -> u32 {
        with_plan!(self, |p| p.psi())
    }

    /// `n⁻¹ mod q`.
    #[inline]
    pub fn n_inv(&self) -> u32 {
        with_plan!(self, |p| p.n_inv())
    }

    /// `2q`, precomputed for the lazy butterflies.
    #[inline]
    pub fn two_q(&self) -> u32 {
        with_plan!(self, |p| p.two_q())
    }

    /// Forward twiddle table (identical across reducers).
    #[inline]
    pub fn forward_twiddles(&self) -> &[rlwe_zq::shoup::ShoupPair] {
        with_plan!(self, |p| p.forward_twiddles())
    }

    /// Inverse twiddle table (identical across reducers).
    #[inline]
    pub fn inverse_twiddles(&self) -> &[rlwe_zq::shoup::ShoupPair] {
        with_plan!(self, |p| p.inverse_twiddles())
    }

    /// In-place forward NTT through the selected instantiation.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u32]) {
        with_plan!(self, |p| p.forward(a))
    }

    /// Forward NTT without the final normalization sweep (`[0, 4q)`
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_lazy(&self, a: &mut [u32]) {
        with_plan!(self, |p| p.forward_lazy(a))
    }

    /// In-place inverse NTT through the selected instantiation.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u32]) {
        with_plan!(self, |p| p.inverse(a))
    }

    /// Forward transform with exact operation counts (see
    /// [`NttPlan::forward_traced`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_traced(&self, a: &mut [u32]) -> NttOpTrace {
        with_plan!(self, |p| p.forward_traced(a))
    }

    /// Inverse transform with exact operation counts (see
    /// [`NttPlan::inverse_traced`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_traced(&self, a: &mut [u32]) -> NttOpTrace {
        with_plan!(self, |p| p.inverse_traced(a))
    }

    /// Convenience: forward-transforms a copy of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_copy(&self, a: &[u32]) -> Vec<u32> {
        with_plan!(self, |p| p.forward_copy(a))
    }

    /// Convenience: inverse-transforms a copy of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_copy(&self, a: &[u32]) -> Vec<u32> {
        with_plan!(self, |p| p.inverse_copy(a))
    }

    /// Negacyclic polynomial multiplication through the selected
    /// instantiation.
    ///
    /// # Panics
    ///
    /// Panics if either input's length differs from n.
    pub fn negacyclic_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        with_plan!(self, |p| p.negacyclic_mul(a, b))
    }

    /// Allocation-free negacyclic multiplication (see
    /// [`NttPlan::negacyclic_mul_into`]).
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] if any operand length differs from
    /// `n`.
    pub fn negacyclic_mul_into(
        &self,
        a: &[u32],
        b: &[u32],
        out: &mut [u32],
        scratch: &mut PolyScratch,
    ) -> Result<(), NttError> {
        with_plan!(self, |p| p.negacyclic_mul_into(a, b, out, scratch))
    }

    /// Whether the selected plan carries AVX2 twiddle tables (host
    /// support detected at construction and `n ≥ 16`). See
    /// [`NttPlan::has_avx2`].
    #[inline]
    pub fn has_avx2(&self) -> bool {
        with_plan!(self, |p| p.has_avx2())
    }

    /// Forward NTT through the AVX2 kernel when available, the scalar
    /// reference otherwise — bit-identical either way (see
    /// [`NttPlan::forward_avx2`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_avx2(&self, a: &mut [u32]) {
        with_plan!(self, |p| p.forward_avx2(a))
    }

    /// Inverse NTT through the AVX2 kernel when available (see
    /// [`NttPlan::inverse_avx2`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_avx2(&self, a: &mut [u32]) {
        with_plan!(self, |p| p.inverse_avx2(a))
    }

    /// Forward-transforms an 8-way interleaved group in place (see
    /// [`NttPlan::forward_interleaved8`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != 8 * n`.
    pub fn forward_interleaved8(&self, buf: &mut [u32]) {
        with_plan!(self, |p| p.forward_interleaved8(buf))
    }

    /// Inverse-transforms an 8-way interleaved group in place (see
    /// [`NttPlan::inverse_interleaved8`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != 8 * n`.
    pub fn inverse_interleaved8(&self, buf: &mut [u32]) {
        with_plan!(self, |p| p.inverse_interleaved8(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_the_specialized_variant_for_the_paper_primes() {
        assert_eq!(
            AnyNttPlan::new(256, 7681).unwrap().kind(),
            ReducerKind::Q7681
        );
        assert_eq!(
            AnyNttPlan::new(512, 12289).unwrap().kind(),
            ReducerKind::Q12289
        );
        // Same prime, non-paper dimension: specialization is by q alone.
        assert_eq!(
            AnyNttPlan::new(1024, 12289).unwrap().kind(),
            ReducerKind::Q12289
        );
        assert_eq!(
            AnyNttPlan::new(256, 8383489).unwrap().kind(),
            ReducerKind::Barrett
        );
    }

    #[test]
    fn dispatch_decisions_are_counted_per_reducer_kind() {
        let specialized = dispatch_counter(ReducerKind::Q7681, "reference").get();
        let generic = dispatch_counter(ReducerKind::Barrett, "reference").get();
        let _ = AnyNttPlan::new(256, 7681).unwrap();
        let _ = AnyNttPlan::generic(NttPlan::new(256, 7681).unwrap());
        // Counters are global and other tests run concurrently, so only
        // lower bounds are exact here.
        assert!(dispatch_counter(ReducerKind::Q7681, "reference").get() > specialized);
        assert!(dispatch_counter(ReducerKind::Barrett, "reference").get() > generic);
    }

    #[test]
    fn backend_labels_are_counted_independently() {
        let avx2_before = dispatch_counter(ReducerKind::Q12289, "avx2").get();
        let interleaved_before = dispatch_counter(ReducerKind::Q12289, "interleaved").get();
        let plan = AnyNttPlan::promote_for_backend(NttPlan::new(512, 12289).unwrap(), "avx2");
        plan.record_interleaved_dispatch();
        assert!(dispatch_counter(ReducerKind::Q12289, "avx2").get() > avx2_before);
        assert!(dispatch_counter(ReducerKind::Q12289, "interleaved").get() > interleaved_before);
        // The rendered metric carries both dimensions.
        let text = rlwe_obs::render();
        assert!(text.contains("ntt_backend=\"avx2\""));
        assert!(text.contains("ntt_backend=\"interleaved\""));
    }

    #[test]
    fn avx2_entry_points_are_bit_identical_through_the_dispatcher() {
        let any = AnyNttPlan::new(512, 12289).unwrap();
        let generic = NttPlan::new(512, 12289).unwrap();
        let a: Vec<u32> = (0..512u32).map(|i| (i * 131 + 5) % 12289).collect();
        let mut via_avx2 = a.clone();
        any.forward_avx2(&mut via_avx2);
        assert_eq!(via_avx2, generic.forward_copy(&a));
        any.inverse_avx2(&mut via_avx2);
        assert_eq!(via_avx2, a);

        let mut buf = vec![0u32; 8 * 512];
        let polys: Vec<&[u32]> = vec![&a; 8];
        crate::avx2::interleave8_into(&polys, 512, &mut buf);
        any.forward_interleaved8(&mut buf);
        let mut lane = vec![0u32; 512];
        crate::avx2::deinterleave8_lane(&buf, 3, &mut lane);
        assert_eq!(lane, generic.forward_copy(&a));
    }

    #[test]
    fn selection_preserves_error_behaviour() {
        assert!(matches!(
            AnyNttPlan::new(3, 7681),
            Err(NttError::InvalidDimension { .. })
        ));
        assert!(matches!(
            AnyNttPlan::new(2048, 7681),
            Err(NttError::NotNttFriendly { .. })
        ));
        assert!(matches!(
            AnyNttPlan::new(256, 1 << 30),
            Err(NttError::ModulusTooLarge { .. })
        ));
    }

    #[test]
    fn dispatched_transforms_match_the_generic_plan() {
        for (n, q) in [(256usize, 7681u32), (512, 12289)] {
            let any = AnyNttPlan::new(n, q).unwrap();
            let generic = NttPlan::new(n, q).unwrap();
            assert_eq!(any.n(), n);
            assert_eq!(any.q(), q);
            assert_eq!(any.forward_twiddles(), generic.forward_twiddles());
            let a: Vec<u32> = (0..n as u32).map(|i| (i * 13 + 7) % q).collect();
            assert_eq!(any.forward_copy(&a), generic.forward_copy(&a));
            assert_eq!(any.inverse_copy(&a), generic.inverse_copy(&a));
            let b: Vec<u32> = (0..n as u32).map(|i| (i * 5 + 1) % q).collect();
            assert_eq!(any.negacyclic_mul(&a, &b), generic.negacyclic_mul(&a, &b));
            let mut out = vec![0u32; n];
            let mut scratch = PolyScratch::new(n);
            any.negacyclic_mul_into(&a, &b, &mut out, &mut scratch)
                .unwrap();
            assert_eq!(out, generic.negacyclic_mul(&a, &b));
        }
    }
}

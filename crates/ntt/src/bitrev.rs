//! Bit-reversal permutation (line 1 of the paper's Algorithms 3 and 4).
//!
//! The Cooley-Tukey forward transform used here takes natural-order input
//! and produces bit-reversed output, while the Gentleman-Sande inverse does
//! the opposite — so a full multiply never needs an explicit permutation.
//! The permutation is still exposed because the paper's Algorithm 3/4 state
//! it explicitly, and the M4F cost model charges for it when reproducing
//! the "standard algorithm" baseline.

/// Reverses the low `bits` bits of `i`.
///
/// # Example
///
/// ```
/// use rlwe_ntt::bitrev::bitrev;
///
/// assert_eq!(bitrev(0b0011, 4), 0b1100);
/// assert_eq!(bitrev(1, 8), 128);
/// ```
#[inline]
pub fn bitrev(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Applies the bit-reversal permutation to `a` in place.
///
/// # Panics
///
/// Panics if the length of `a` is not a power of two.
///
/// # Example
///
/// ```
/// use rlwe_ntt::bitrev::permute_in_place;
///
/// let mut a = vec![0u32, 1, 2, 3, 4, 5, 6, 7];
/// permute_in_place(&mut a);
/// assert_eq!(a, vec![0, 4, 2, 6, 1, 5, 3, 7]);
/// ```
pub fn permute_in_place<T>(a: &mut [T]) {
    let n = a.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bitrev(i, bits);
        if i < j {
            a.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let orig: Vec<u32> = (0..256).collect();
        let mut a = orig.clone();
        permute_in_place(&mut a);
        assert_ne!(a, orig);
        permute_in_place(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn bitrev_is_self_inverse() {
        for bits in [2u32, 4, 8, 10] {
            for i in 0..(1usize << bits) {
                assert_eq!(bitrev(bitrev(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn fixed_points_are_palindromes() {
        // For 4 bits: 0000, 0110, 1001, 1111, 0101-ish... verify directly.
        let fixed: Vec<usize> = (0..16).filter(|&i| bitrev(i, 4) == i).collect();
        assert_eq!(fixed, vec![0b0000, 0b0110, 0b1001, 0b1111]);
    }
}

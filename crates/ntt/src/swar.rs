//! SWAR NTT — the paper's §V future work ("an efficient implementation
//! for a SIMD processor, e.g. ARM NEON"), explored with SIMD-within-a-
//! register arithmetic that any 64-bit core provides.
//!
//! Two 13/14-bit coefficients already share a 32-bit word in the paper's
//! packed layout; on a 64-bit register **four** coefficients fit in
//! 16-bit lanes. With the lazy butterflies, lane values stay below
//! `4q < 2¹⁶` (requiring `q < 2¹⁴`, true for both paper moduli), so the
//! whole-word lane additions of the butterfly never carry across a lane
//! boundary — and because the difference leg is `+2q`-biased
//! ([`rlwe_zq::lazy::sub_lazy`]), whole-word subtraction never borrows
//! across one either. The twiddle multiply still needs widening, so
//! butterflies unpack for the product and re-pack — exactly the trade a
//! real NEON port makes (`vmull.u16` widens to 32 bits). All residual
//! reductions are the masked [`rlwe_zq::lazy::reduce_once`].
//!
//! The point is architectural exploration, not peak speed: the variant is
//! bit-for-bit equivalent to [`crate::NttPlan::forward`] (tests enforce
//! it) and the Criterion benches let the reader judge whether 4-lane SWAR
//! pays off on their machine.

use rlwe_zq::{lazy, Reducer};

use crate::plan::NttPlan;

/// Lane mask: four 16-bit lanes in a u64.
const LANE_MASK: u64 = 0xFFFF_FFFF_FFFF_FFFF;

/// Packs four coefficients (each < 2¹⁶) into one u64, lane 0 in the low
/// 16 bits.
///
/// # Panics
///
/// Debug builds assert every coefficient fits its lane.
#[inline]
pub fn pack4(c: [u32; 4]) -> u64 {
    debug_assert!(c.iter().all(|&v| v < 1 << 16));
    (c[0] as u64) | ((c[1] as u64) << 16) | ((c[2] as u64) << 32) | ((c[3] as u64) << 48)
}

/// Unpacks a 4-lane word.
#[inline]
pub fn unpack4(w: u64) -> [u32; 4] {
    [
        (w & 0xFFFF) as u32,
        ((w >> 16) & 0xFFFF) as u32,
        ((w >> 32) & 0xFFFF) as u32,
        ((w >> 48) & 0xFFFF) as u32,
    ]
}

/// Lane-parallel modular addition: `(a + b) mod q` in all four lanes.
///
/// Works because `a, b < q ≤ 12289` keeps every lane sum below 2¹⁵ — no
/// carry can cross a lane boundary. The per-lane correction is the
/// masked [`rlwe_zq::lazy::reduce_once`].
#[inline]
pub fn add4_mod(a: u64, b: u64, q: u32) -> u64 {
    debug_assert!(q < 1 << 15);
    // Lane sums stay below 2^15, so a plain 64-bit add never carries
    // across a lane boundary.
    let sum = a.wrapping_add(b) & LANE_MASK;
    let mut lanes = unpack4(sum);
    for l in lanes.iter_mut() {
        *l = lazy::reduce_once(*l, q);
    }
    pack4(lanes)
}

/// Lane-parallel modular subtraction, masked per lane.
#[inline]
pub fn sub4_mod(a: u64, b: u64, q: u32) -> u64 {
    let mut la = unpack4(a);
    let lb = unpack4(b);
    for (x, y) in la.iter_mut().zip(lb) {
        *x = lazy::sub_mod_masked(*x, y, q);
    }
    pack4(la)
}

/// In-place forward negacyclic NTT on 4-lane packed words.
///
/// Layout: word `i` holds coefficients `4i .. 4i+3`. Stages with span
/// ≥ 4 run four butterflies per iteration on whole words; the last two
/// stages (spans 2 and 1) work intra-word. Between stages lanes carry
/// lazy `[0, 4q)` values; the final stage normalizes, so the output is
/// fully reduced — bit-identical to [`NttPlan::forward`].
///
/// # Panics
///
/// Panics if `words.len() != n/4`, `n < 8`, or `q ≥ 2¹⁴`.
pub fn forward_swar<R: Reducer>(plan: &NttPlan<R>, words: &mut [u64]) {
    let n = plan.n();
    assert!(n >= 8, "SWAR layout needs n >= 8");
    assert_eq!(words.len(), n / 4, "need n/4 four-lane words");
    let q = plan.q();
    crate::packed::assert_packed_q(q);
    let two_q = plan.two_q();
    let r = *plan.reducer();
    let tw = plan.forward_twiddles();
    let mut t = n;
    let mut m = 1usize;
    // Word-level stages: span t >= 4.
    while m < n / 4 {
        t >>= 1;
        for i in 0..m {
            let s = tw[m + i];
            let j1 = 2 * i * t;
            let mut j = j1;
            while j < j1 + t {
                let lu = unpack4(words[j / 4]);
                let lv = unpack4(words[(j + t) / 4]);
                // Masked per-lane correction of the add leg, widening
                // twiddle multiply per lane (the vmull step) into [0, 2q).
                let ur = [
                    r.reduce_once_2q(lu[0]),
                    r.reduce_once_2q(lu[1]),
                    r.reduce_once_2q(lu[2]),
                    r.reduce_once_2q(lu[3]),
                ];
                let prod = [
                    s.mul_lazy(lv[0], q),
                    s.mul_lazy(lv[1], q),
                    s.mul_lazy(lv[2], q),
                    s.mul_lazy(lv[3], q),
                ];
                let u_word = pack4(ur);
                let p_word = pack4(prod);
                // Whole-word lane arithmetic: sums < 4q < 2^16 (no carry);
                // the +2q bias keeps every difference lane non-negative
                // (no borrow).
                let bias = pack4([two_q; 4]);
                words[j / 4] = u_word.wrapping_add(p_word);
                words[(j + t) / 4] = u_word.wrapping_add(bias).wrapping_sub(p_word);
                j += 4;
            }
        }
        m <<= 1;
    }
    // Stage with span 2: word i is exactly one block (coefficients
    // 4i..4i+3), two butterflies (4i, 4i+2) and (4i+1, 4i+3) sharing the
    // block twiddle tw[m + i].
    for i in 0..n / 4 {
        let lanes = unpack4(words[i]);
        let sp = tw[m + i];
        let u0 = r.reduce_once_2q(lanes[0]);
        let u1 = r.reduce_once_2q(lanes[1]);
        let v0 = sp.mul_lazy(lanes[2], q);
        let v1 = sp.mul_lazy(lanes[3], q);
        words[i] = pack4([
            lazy::add_lazy(u0, v0),
            lazy::add_lazy(u1, v1),
            lazy::sub_lazy(u0, v0, two_q),
            lazy::sub_lazy(u1, v1, two_q),
        ]);
    }
    m <<= 1;
    // Final stage, span 1: butterflies (4i, 4i+1) and (4i+2, 4i+3) with
    // distinct twiddles, normalizing each output into [0, q).
    for i in 0..n / 4 {
        let lanes = unpack4(words[i]);
        let s0 = tw[m + 2 * i];
        let s1 = tw[m + 2 * i + 1];
        let u0 = r.reduce_once_2q(lanes[0]);
        let u2 = r.reduce_once_2q(lanes[2]);
        let v0 = s0.mul_lazy(lanes[1], q);
        let v1 = s1.mul_lazy(lanes[3], q);
        words[i] = pack4([
            r.normalize4(lazy::add_lazy(u0, v0)),
            r.normalize4(lazy::sub_lazy(u0, v0, two_q)),
            r.normalize4(lazy::add_lazy(u2, v1)),
            r.normalize4(lazy::sub_lazy(u2, v1, two_q)),
        ]);
    }
}

/// Packs a natural-order coefficient slice into the 4-lane layout.
///
/// # Panics
///
/// Panics if the length is not a multiple of 4.
pub fn pack_coeffs4(a: &[u32]) -> Vec<u64> {
    assert!(a.len().is_multiple_of(4), "length must be a multiple of 4");
    a.chunks_exact(4)
        .map(|c| pack4([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Expands the 4-lane layout back to flat coefficients.
pub fn unpack_coeffs4(words: &[u64]) -> Vec<u32> {
    words.iter().flat_map(|&w| unpack4(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        let c = [1u32, 7680, 12288, 0];
        assert_eq!(unpack4(pack4(c)), c);
        let v: Vec<u32> = (0..64u32).map(|i| i * 100 % 7681).collect();
        assert_eq!(unpack_coeffs4(&pack_coeffs4(&v)), v);
    }

    #[test]
    fn lane_arithmetic_matches_scalar() {
        for q in [7681u32, 12289] {
            let a = [q - 1, 0, q / 2, 1234 % q];
            let b = [q - 1, q - 1, q / 2 + 1, 999 % q];
            let pa = pack4(a);
            let pb = pack4(b);
            let sum = unpack4(add4_mod(pa, pb, q));
            let dif = unpack4(sub4_mod(pa, pb, q));
            for i in 0..4 {
                assert_eq!(sum[i], rlwe_zq::add_mod(a[i], b[i], q), "add lane {i}");
                assert_eq!(dif[i], rlwe_zq::sub_mod(a[i], b[i], q), "sub lane {i}");
            }
        }
    }

    #[test]
    fn swar_forward_matches_reference() {
        for (n, q) in [(8usize, 12289u32), (64, 7681), (256, 7681), (512, 12289)] {
            let plan = NttPlan::new(n, q).unwrap();
            let a: Vec<u32> = (0..n as u32).map(|i| (i * 31 + 5) % q).collect();
            let want = plan.forward_copy(&a);
            let mut words = pack_coeffs4(&a);
            forward_swar(&plan, &mut words);
            assert_eq!(unpack_coeffs4(&words), want, "n={n} q={q}");
        }
    }

    #[test]
    fn swar_forward_reduces_worst_case_inputs() {
        let plan = NttPlan::new(256, 12289).unwrap();
        let mut words = pack_coeffs4(&vec![12288u32; 256]);
        forward_swar(&plan, &mut words);
        let got = unpack_coeffs4(&words);
        assert!(got.iter().all(|&c| c < 12289));
        assert_eq!(got, plan.forward_copy(&vec![12288u32; 256]));
    }

    #[test]
    #[should_panic(expected = "n/4")]
    fn wrong_length_panics() {
        let plan = NttPlan::new(16, 12289).unwrap();
        let mut w = vec![0u64; 8];
        forward_swar(&plan, &mut w);
    }
}

//! Schoolbook (O(n²)) ring multiplication — the correctness oracle.
//!
//! Every NTT variant in this crate must agree exactly with these functions.
//! They implement multiplication in `Z_q[x]/(xⁿ + 1)` (negacyclic) and in
//! `Z_q[x]/(xⁿ − 1)` (cyclic, used by tests to confirm the *negacyclic*
//! wrap really is the one being computed).

use rlwe_zq::{add_mod, mul_mod, sub_mod};

/// Negacyclic convolution: multiplication in `Z_q[x]/(xⁿ + 1)`.
///
/// `c_k = Σ_{i+j=k} a_i·b_j − Σ_{i+j=k+n} a_i·b_j (mod q)`
///
/// # Panics
///
/// Panics if the inputs differ in length.
///
/// # Example
///
/// ```
/// // (x + 1)(x - 1) = x² - 1 ≡ -2 (mod x² + 1)
/// let c = rlwe_ntt::schoolbook::negacyclic_mul(&[1, 1], &[7680, 1], 7681);
/// assert_eq!(c, vec![7679, 0]);
/// ```
#[allow(clippy::needless_range_loop)] // dual-index convolution reads clearest
pub fn negacyclic_mul(a: &[u32], b: &[u32], q: u32) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "operands must match in length");
    let n = a.len();
    let mut c = vec![0u32; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = mul_mod(a[i], b[j], q);
            let k = i + j;
            if k < n {
                c[k] = add_mod(c[k], prod, q);
            } else {
                c[k - n] = sub_mod(c[k - n], prod, q);
            }
        }
    }
    c
}

/// Cyclic convolution: multiplication in `Z_q[x]/(xⁿ − 1)`.
///
/// # Panics
///
/// Panics if the inputs differ in length.
#[allow(clippy::needless_range_loop)] // dual-index convolution reads clearest
pub fn cyclic_mul(a: &[u32], b: &[u32], q: u32) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "operands must match in length");
    let n = a.len();
    let mut c = vec![0u32; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = mul_mod(a[i], b[j], q);
            let k = (i + j) % n;
            c[k] = add_mod(c[k], prod, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_element() {
        let mut one = vec![0u32; 8];
        one[0] = 1;
        let a: Vec<u32> = (0..8).map(|i| (i * 997 + 13) % 7681).collect();
        assert_eq!(negacyclic_mul(&a, &one, 7681), a);
        assert_eq!(cyclic_mul(&a, &one, 7681), a);
    }

    #[test]
    fn x_to_the_n_is_minus_one_negacyclic() {
        // x^(n/2) * x^(n/2) = x^n ≡ -1.
        let n = 16;
        let q = 7681;
        let mut h = vec![0u32; n];
        h[n / 2] = 1;
        let c = negacyclic_mul(&h, &h, q);
        let mut want = vec![0u32; n];
        want[0] = q - 1;
        assert_eq!(c, want);
    }

    #[test]
    fn x_to_the_n_is_plus_one_cyclic() {
        let n = 16;
        let q = 7681;
        let mut h = vec![0u32; n];
        h[n / 2] = 1;
        let c = cyclic_mul(&h, &h, q);
        let mut want = vec![0u32; n];
        want[0] = 1;
        assert_eq!(c, want);
    }

    #[test]
    fn commutative() {
        let q = 12289;
        let a: Vec<u32> = (0..32).map(|i| (i * 31 + 9) % q).collect();
        let b: Vec<u32> = (0..32).map(|i| (i * 57 + 2) % q).collect();
        assert_eq!(negacyclic_mul(&a, &b, q), negacyclic_mul(&b, &a, q));
    }

    #[test]
    fn distributes_over_addition() {
        let q = 12289u32;
        let n = 16;
        let a: Vec<u32> = (0..n as u32).map(|i| (i * 31 + 9) % q).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| (i * 57 + 2) % q).collect();
        let c: Vec<u32> = (0..n as u32).map(|i| (i * 5 + 11) % q).collect();
        let bc: Vec<u32> = b.iter().zip(&c).map(|(&x, &y)| add_mod(x, y, q)).collect();
        let lhs = negacyclic_mul(&a, &bc, q);
        let rhs: Vec<u32> = negacyclic_mul(&a, &b, q)
            .iter()
            .zip(&negacyclic_mul(&a, &c, q))
            .map(|(&x, &y)| add_mod(x, y, q))
            .collect();
        assert_eq!(lhs, rhs);
    }
}

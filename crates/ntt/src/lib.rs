//! Negacyclic number-theoretic transform (NTT) engine.
//!
//! Ring-LWE arithmetic happens in `R_q = Z_q[x]/(xⁿ + 1)`. Multiplication in
//! that ring is a *negacyclic* (negative-wrapped) convolution, which the
//! DATE 2015 paper computes with an n-point NTT whose twiddle factors merge
//! the powers of ψ (a primitive 2n-th root of unity, ψ² = ω, ψⁿ = −1) into
//! the butterflies — the `w = √w_m` recurrence of the paper's Algorithms
//! 3 and 4.
//!
//! Three functionally identical transform implementations are provided,
//! mirroring the paper's optimisation ladder:
//!
//! * [`NttPlan::forward`] / [`NttPlan::inverse`] — the reference scalar
//!   in-place transforms (Cooley-Tukey decimation-in-time forward, natural →
//!   bit-reversed order; Gentleman-Sande inverse back to natural order).
//! * [`packed`] — the paper's §III-D layout: **two coefficients per 32-bit
//!   word**, inner loop unrolled by two, halving memory accesses. The last
//!   forward stage (span 1) becomes an intra-word butterfly — this is the
//!   epilogue of the paper's Algorithm 4.
//! * [`parallel`] — the paper's *parallel NTT*: three transforms advanced in
//!   the same loop nest so twiddle loads and loop overhead are shared
//!   (§III-D, measured at 8.3% faster than three separate NTTs).
//!
//! All three variants share the same **lazy-reduction butterfly** core
//! (`rlwe_zq::lazy`, Harvey-style): coefficients travel unreduced in
//! `[0, 2q)`/`[0, 4q)` across stages, the few surviving corrections are
//! masked (branch-free, cmov-independent), and canonical `[0, q)` is
//! restored exactly once per transform — the forward in a final sweep
//! (skippable via [`NttPlan::forward_lazy`] when the consumer reduces
//! anyway), the inverse inside its merged final stage, where the `n⁻¹`
//! scaling is folded into the last butterflies. This requires `q < 2³⁰`
//! (enforced by [`NttPlan::new`]); the halfword-packed layouts further
//! require `q < 2¹⁴`, amply satisfied by the paper's moduli.
//! [`NttPlan::forward_traced`]/[`NttPlan::inverse_traced`] return the
//! exact per-kind operation counts ([`NttOpTrace`]) so the leakage
//! harness can pin the transforms' input-independence in CI.
//!
//! Every kernel is generic over the modular-reduction strategy
//! ([`rlwe_zq::Reducer`]): `NttPlan` defaults to the runtime-Barrett
//! reducer, while `NttPlan<rlwe_zq::reduce::Q7681>` /
//! `NttPlan<rlwe_zq::reduce::Q12289>` monomorphize the paper's
//! special-form primes into the butterflies as compile-time constants —
//! identical operation structure, bit-identical outputs. [`AnyNttPlan`]
//! performs the `(n, q) → instantiation` selection exactly once, at
//! construction.
//!
//! A schoolbook negacyclic multiplier ([`schoolbook`]) is the independent
//! correctness oracle: every variant must agree with it exactly.
//!
//! # Example
//!
//! ```
//! use rlwe_ntt::NttPlan;
//!
//! # fn main() -> Result<(), rlwe_ntt::NttError> {
//! let plan = NttPlan::new(256, 7681)?;   // the paper's P1 ring
//! let a: Vec<u32> = (0..256).map(|i| (i * 31 + 7) % 7681).collect();
//! let b: Vec<u32> = (0..256).map(|i| (i * 17 + 1) % 7681).collect();
//! let c = plan.negacyclic_mul(&a, &b);
//! assert_eq!(c, rlwe_ntt::schoolbook::negacyclic_mul(&a, &b, 7681));
//! # Ok(())
//! # }
//! ```

// `deny` rather than the workspace-wide `forbid`: the AVX2 backend
// (src/avx2.rs) needs `#[target_feature(enable = "avx2")]` kernels with
// raw-pointer vector loads, and `forbid` cannot be overridden by that
// module's scoped allow. Everything outside `avx2::kernel` is still
// rejected at compile time, and the kernels sit behind safe,
// detection-checked wrappers (see DESIGN.md §11).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
mod error;
mod plan;
mod scratch;
mod trace;

pub mod avx2;
pub mod bitrev;
pub mod karatsuba;
pub mod packed;
pub mod parallel;
pub mod pointwise;
pub mod primes;
pub mod schoolbook;
pub mod swar;

pub use dispatch::AnyNttPlan;
pub use error::NttError;
pub use plan::NttPlan;
pub use scratch::PolyScratch;
pub use trace::NttOpTrace;

//! Karatsuba negacyclic multiplication — the classical sub-quadratic
//! baseline between schoolbook (O(n²)) and the NTT (O(n log n)).
//!
//! The paper's §II-C motivates the NTT by the asymptotics of "large
//! polynomial multiplications"; this module lets the benches locate the
//! actual crossover points on a real machine
//! (`cargo run -p rlwe-bench --bin crossover`).

use rlwe_zq::{add_mod, sub_mod};

/// Threshold below which recursion falls back to schoolbook.
const BASE_CASE: usize = 32;

/// Negacyclic multiplication via Karatsuba on the linear product followed
/// by the `xⁿ ≡ −1` wrap.
///
/// # Panics
///
/// Panics if the inputs differ in length or the length is zero.
///
/// # Example
///
/// ```
/// use rlwe_ntt::{karatsuba, schoolbook};
///
/// let a: Vec<u32> = (0..64).map(|i| (i * 31 + 5) % 7681).collect();
/// let b: Vec<u32> = (0..64).map(|i| (i * 17 + 9) % 7681).collect();
/// assert_eq!(
///     karatsuba::negacyclic_mul(&a, &b, 7681),
///     schoolbook::negacyclic_mul(&a, &b, 7681)
/// );
/// ```
pub fn negacyclic_mul(a: &[u32], b: &[u32], q: u32) -> Vec<u32> {
    assert_eq!(a.len(), b.len(), "operands must match in length");
    assert!(!a.is_empty(), "empty polynomials have no product");
    let n = a.len();
    let full = karatsuba_linear(a, b, q);
    // Wrap: c[k] - c[k+n] for k in 0..n (degree 2n-2 product).
    let mut out = vec![0u32; n];
    for k in 0..n {
        let hi = if k + n < full.len() { full[k + n] } else { 0 };
        out[k] = sub_mod(full[k], hi, q);
    }
    out
}

/// Linear (non-wrapped) product of length `2n − 1`.
fn karatsuba_linear(a: &[u32], b: &[u32], q: u32) -> Vec<u32> {
    let n = a.len();
    if n <= BASE_CASE {
        return schoolbook_linear(a, b, q);
    }
    let half = n / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);
    // p0 = a0*b0, p2 = a1*b1, p1 = (a0+a1)(b0+b1) − p0 − p2.
    let p0 = karatsuba_linear(a0, b0, q);
    let p2 = karatsuba_linear(a1, b1, q);
    let a01: Vec<u32> = sum_padded(a0, a1, q);
    let b01: Vec<u32> = sum_padded(b0, b1, q);
    let mut p1 = karatsuba_linear(&a01, &b01, q);
    for (i, &v) in p0.iter().enumerate() {
        p1[i] = sub_mod(p1[i], v, q);
    }
    for (i, &v) in p2.iter().enumerate() {
        p1[i] = sub_mod(p1[i], v, q);
    }
    // Combine: p0 + p1·x^half + p2·x^(2·half).
    let mut out = vec![0u32; 2 * n - 1];
    for (i, &v) in p0.iter().enumerate() {
        out[i] = add_mod(out[i], v, q);
    }
    for (i, &v) in p1.iter().enumerate() {
        out[half + i] = add_mod(out[half + i], v, q);
    }
    for (i, &v) in p2.iter().enumerate() {
        out[2 * half + i] = add_mod(out[2 * half + i], v, q);
    }
    out
}

/// Element-wise sum of two possibly different-length halves.
fn sum_padded(x: &[u32], y: &[u32], q: u32) -> Vec<u32> {
    let len = x.len().max(y.len());
    (0..len)
        .map(|i| {
            let a = x.get(i).copied().unwrap_or(0);
            let b = y.get(i).copied().unwrap_or(0);
            add_mod(a, b, q)
        })
        .collect()
}

/// Schoolbook linear product (base case).
fn schoolbook_linear(a: &[u32], b: &[u32], q: u32) -> Vec<u32> {
    let mut out = vec![0u32; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] = add_mod(out[i + j], rlwe_zq::mul_mod(x, y, q), q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schoolbook;

    fn demo(n: usize, q: u32, seed: u32) -> Vec<u32> {
        (0..n as u32)
            .map(|i| (i.wrapping_mul(seed) + 3) % q)
            .collect()
    }

    #[test]
    fn matches_schoolbook_for_powers_of_two() {
        for n in [1usize, 2, 4, 16, 32, 64, 128, 256] {
            let a = demo(n, 7681, 31);
            let b = demo(n, 7681, 77);
            assert_eq!(
                negacyclic_mul(&a, &b, 7681),
                schoolbook::negacyclic_mul(&a, &b, 7681),
                "n = {n}"
            );
        }
    }

    #[test]
    fn matches_schoolbook_for_odd_sizes() {
        // Karatsuba's half-splitting must handle non-powers of two.
        for n in [3usize, 33, 63, 100, 255] {
            let a = demo(n, 12289, 5);
            let b = demo(n, 12289, 11);
            assert_eq!(
                negacyclic_mul(&a, &b, 12289),
                schoolbook::negacyclic_mul(&a, &b, 12289),
                "n = {n}"
            );
        }
    }

    #[test]
    fn agrees_with_ntt_at_p1() {
        let plan = crate::NttPlan::new(256, 7681).unwrap();
        let a = demo(256, 7681, 13);
        let b = demo(256, 7681, 17);
        assert_eq!(negacyclic_mul(&a, &b, 7681), plan.negacyclic_mul(&a, &b));
    }

    #[test]
    fn identity_and_negation() {
        let n = 64;
        let q = 7681;
        let a = demo(n, q, 9);
        let mut one = vec![0u32; n];
        one[0] = 1;
        assert_eq!(negacyclic_mul(&a, &one, q), a);
        // x^(n/2) squared = -1.
        let mut h = vec![0u32; n];
        h[n / 2] = 1;
        let c = negacyclic_mul(&h, &h, q);
        assert_eq!(c[0], q - 1);
        assert!(c[1..].iter().all(|&v| v == 0));
    }
}

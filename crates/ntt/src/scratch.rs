//! [`PolyScratch`]: a per-thread arena of reusable polynomial buffers.
//!
//! The scheme's hot paths (encrypt: three error polynomials plus the
//! encoded message; decrypt: one working polynomial) need short-lived
//! n-coefficient buffers. Allocating them per call is what made every
//! `encrypt` cost six heap allocations; a `PolyScratch` owned by the
//! caller (one per worker thread in `rlwe-engine`'s batch fan-out) pays
//! those allocations once and then serves every subsequent operation
//! allocation-free.
//!
//! Discipline: `PolyScratch` is deliberately **not** `Sync` — each worker
//! thread owns its own arena. Buffers are checked out with
//! [`PolyScratch::take`] and must be returned with [`PolyScratch::put`];
//! a buffer that is dropped instead of returned is simply re-allocated on
//! the next `take` (correct, just slower), so the arena can never dangle
//! or double-lend.

/// A reusable arena of `n`-coefficient `u32` buffers plus `u64` lane
/// buffers for the SWAR backend.
///
/// # Example
///
/// ```
/// use rlwe_ntt::PolyScratch;
///
/// let mut scratch = PolyScratch::new(256);
/// let mut buf = scratch.take();          // first take allocates
/// assert_eq!(buf.len(), 256);
/// buf[0] = 42;
/// scratch.put(buf);
/// let again = scratch.take();            // second take reuses the buffer
/// assert_eq!(again.len(), 256);
/// ```
#[derive(Debug, Default)]
pub struct PolyScratch {
    n: usize,
    bufs: Vec<Vec<u32>>,
    bufs64: Vec<Vec<u64>>,
    wide: Vec<Vec<u32>>,
}

impl PolyScratch {
    /// An empty arena for `n`-coefficient polynomials.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            bufs: Vec::new(),
            bufs64: Vec::new(),
            wide: Vec::new(),
        }
    }

    /// The polynomial length this arena serves.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Checks out an `n`-length buffer (contents unspecified). Reuses a
    /// returned buffer when one is available, allocates otherwise.
    #[must_use = "dropping the buffer forfeits the reuse; return it with put()"]
    pub fn take(&mut self) -> Vec<u32> {
        match self.bufs.pop() {
            Some(buf) => buf,
            None => vec![0u32; self.n],
        }
    }

    /// Returns a buffer to the arena for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's length differs from the arena's `n` — a
    /// misreturned buffer would silently corrupt a later operation.
    pub fn put(&mut self, buf: Vec<u32>) {
        assert_eq!(buf.len(), self.n, "returned buffer has the wrong length");
        self.bufs.push(buf);
    }

    /// Checks out an `n/4`-length `u64` lane buffer (for the SWAR NTT
    /// backend's four-coefficients-per-word layout).
    #[must_use = "dropping the buffer forfeits the reuse; return it with put64()"]
    pub fn take64(&mut self) -> Vec<u64> {
        match self.bufs64.pop() {
            Some(buf) => buf,
            None => vec![0u64; self.n / 4],
        }
    }

    /// Returns a `u64` lane buffer to the arena.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's length differs from `n/4`.
    pub fn put64(&mut self, buf: Vec<u64>) {
        assert_eq!(
            buf.len(),
            self.n / 4,
            "returned lane buffer has the wrong length"
        );
        self.bufs64.push(buf);
    }

    /// Checks out an `8n`-length interleaved-group buffer (for the AVX2
    /// backend's eight-polynomials-per-transform layout; see
    /// [`crate::avx2::interleave8_into`]).
    #[must_use = "dropping the buffer forfeits the reuse; return it with put_wide()"]
    pub fn take_wide(&mut self) -> Vec<u32> {
        match self.wide.pop() {
            Some(buf) => buf,
            None => vec![0u32; 8 * self.n],
        }
    }

    /// Returns an interleaved-group buffer to the arena.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's length differs from `8n`.
    pub fn put_wide(&mut self, buf: Vec<u32>) {
        assert_eq!(
            buf.len(),
            8 * self.n,
            "returned wide buffer has the wrong length"
        );
        self.wide.push(buf);
    }

    /// Number of `u32` buffers currently parked in the arena (for tests
    /// and capacity diagnostics).
    pub fn parked(&self) -> usize {
        self.bufs.len()
    }

    /// Best-effort erasure of every parked buffer (the buffers stay
    /// parked for reuse). Secret-handling operations that route working
    /// polynomials through the arena — notably CCA decapsulation, whose
    /// decrypted candidate message transits a scratch buffer — call this
    /// before returning so a long-lived per-thread arena does not retain
    /// key-determining material between operations.
    pub fn scrub(&mut self) {
        for buf in &mut self.bufs {
            rlwe_zq::ct::zeroize_u32(buf);
        }
        for buf in &mut self.bufs64 {
            rlwe_zq::ct::zeroize_u64(buf);
        }
        for buf in &mut self.wide {
            rlwe_zq::ct::zeroize_u32(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_storage() {
        let mut s = PolyScratch::new(8);
        let buf = s.take();
        let ptr = buf.as_ptr();
        s.put(buf);
        assert_eq!(s.parked(), 1);
        let buf2 = s.take();
        assert_eq!(buf2.as_ptr(), ptr, "the same allocation comes back");
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn scrub_erases_parked_buffers_in_place() {
        let mut s = PolyScratch::new(8);
        let mut a = s.take();
        let mut b = s.take64();
        a.fill(0xDEAD_BEEF);
        b.fill(0xFEED_FACE_CAFE_F00D);
        s.put(a);
        s.put64(b);
        s.scrub();
        let a = s.take();
        assert!(a.iter().all(|&c| c == 0), "u32 buffer survived the scrub");
        let b = s.take64();
        assert!(b.iter().all(|&w| w == 0), "u64 buffer survived the scrub");
        s.put(a);
        s.put64(b);
    }

    #[test]
    fn distinct_takes_are_distinct_buffers() {
        let mut s = PolyScratch::new(4);
        let a = s.take();
        let b = s.take();
        assert_ne!(a.as_ptr(), b.as_ptr());
        s.put(a);
        s.put(b);
        assert_eq!(s.parked(), 2);
    }

    #[test]
    fn lane_buffers_have_quarter_length() {
        let mut s = PolyScratch::new(256);
        let w = s.take64();
        assert_eq!(w.len(), 64);
        s.put64(w);
    }

    #[test]
    fn wide_buffers_have_eightfold_length_and_are_reused_and_scrubbed() {
        let mut s = PolyScratch::new(16);
        let mut w = s.take_wide();
        assert_eq!(w.len(), 128);
        w.fill(0xAAAA_5555);
        let ptr = w.as_ptr();
        s.put_wide(w);
        s.scrub();
        let w = s.take_wide();
        assert_eq!(w.as_ptr(), ptr, "the same allocation comes back");
        assert!(w.iter().all(|&c| c == 0), "wide buffer survived the scrub");
        s.put_wide(w);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn returning_a_foreign_wide_buffer_panics() {
        let mut s = PolyScratch::new(8);
        s.put_wide(vec![0u32; 8]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn returning_a_foreign_buffer_panics() {
        let mut s = PolyScratch::new(8);
        s.put(vec![0u32; 7]);
    }
}

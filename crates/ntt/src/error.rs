use std::error::Error;
use std::fmt;

use rlwe_zq::ZqError;

/// Errors produced while building an [`NttPlan`](crate::NttPlan).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NttError {
    /// The ring dimension is not a power of two of at least 4.
    InvalidDimension {
        /// The rejected dimension.
        n: usize,
    },
    /// The modulus does not satisfy `q ≡ 1 (mod 2n)`, so no 2n-th root of
    /// unity (and therefore no n-point negacyclic NTT) exists.
    NotNttFriendly {
        /// The ring dimension requested.
        n: usize,
        /// The offending modulus.
        q: u32,
    },
    /// The underlying modulus failed validation (not prime / out of range).
    Modulus(ZqError),
    /// The modulus is a valid prime but too large for the lazy-reduction
    /// butterflies, which track coefficients in `[0, 4q)` and need that
    /// range to fit a 32-bit word. The authoritative bound is
    /// [`rlwe_zq::lazy::MAX_LAZY_Q`] (`2³⁰`); `rlwe_zq::Modulus` itself
    /// accepts primes up to `2³¹`, but no NTT plan can use them.
    ModulusTooLarge {
        /// The rejected modulus.
        q: u32,
    },
    /// Polynomial operands (or an output buffer) disagree in length.
    LengthMismatch {
        /// The length the operation expected (the plan's `n`, or the first
        /// operand's length for plan-free pointwise ops).
        expected: usize,
        /// The offending operand's length.
        got: usize,
    },
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::InvalidDimension { n } => {
                write!(f, "ring dimension {n} is not a power of two >= 4")
            }
            NttError::NotNttFriendly { n, q } => {
                write!(f, "modulus {q} is not congruent to 1 mod {}", 2 * n)
            }
            NttError::Modulus(e) => write!(f, "invalid modulus: {e}"),
            NttError::ModulusTooLarge { q } => {
                write!(
                    f,
                    "modulus {q} >= 2^30 (rlwe_zq::lazy::MAX_LAZY_Q): lazy-reduction \
                     butterflies need 4q to fit a 32-bit word"
                )
            }
            NttError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "polynomial length mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl Error for NttError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NttError::Modulus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ZqError> for NttError {
    fn from(e: ZqError) -> Self {
        NttError::Modulus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_numbers() {
        let e = NttError::NotNttFriendly { n: 256, q: 7687 };
        assert!(e.to_string().contains("7687"));
        assert!(e.to_string().contains("512"));
    }

    #[test]
    fn zq_errors_convert() {
        let e: NttError = ZqError::NotPrime { q: 10 }.into();
        assert!(matches!(e, NttError::Modulus(_)));
        assert!(e.source().is_some());
    }
}

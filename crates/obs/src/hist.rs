//! Sharded lock-free nanosecond histograms with consistent snapshots.
//!
//! Generalizes `rlwe-engine`'s original `LatencyHistogram` (32
//! power-of-two *microsecond* buckets) to nanosecond resolution with
//! within-bucket interpolated quantiles, and fixes its snapshot-skew
//! design flaw at the type level: all statistics are derived from one
//! [`HistogramSnapshot`], a single pass over the cells, so a concurrent
//! reader can never observe a count/sum/quantile triple that mixes two
//! points in time more than one relaxed-load sweep apart.
//!
//! Recording is a shard pick (thread-local, assigned round-robin on
//! first use) plus two relaxed `fetch_add`s — no locks, no CAS loops.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` holds values in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also includes 0). 40 buckets
/// reach `2^40` ns ≈ 18 minutes, far beyond any latency recorded here.
pub const BUCKETS: usize = 40;

/// Number of independent shards. Each recording thread sticks to one
/// shard, so concurrent writers on different cores rarely contend on a
/// cache line; snapshots sum across shards.
const SHARDS: usize = 8;

struct Shard {
    counts: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// The shard a thread records into: assigned round-robin the first time
/// the thread touches any histogram, then cached thread-locally.
fn shard_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            i = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(i);
        }
        i
    })
}

/// A sharded lock-free nanosecond histogram handle.
///
/// Cheap to clone — clones share the underlying cells, which is how
/// registry handles work: resolve once, record everywhere.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[Shard; SHARDS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram {{ count: {}, sum_ns: {} }}",
            s.len(),
            s.sum_ns()
        )
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            shards: Arc::new(std::array::from_fn(|_| Shard::new())),
        }
    }

    /// The bucket index holding `ns`.
    #[inline]
    fn bucket(ns: u64) -> usize {
        ((63 - ns.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Lower and upper bound (ns) of bucket `i`, as used by the
    /// interpolated quantile: `[lo, hi)` with `lo = 0` for bucket 0.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        (lo, 1u64 << (i + 1))
    }

    /// Records one value in nanoseconds: two relaxed atomic adds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let shard = &self.shards[shard_index()];
        shard.counts[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        shard.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one duration (saturating at `u64::MAX` ns ≈ 584 years).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64)
    }

    /// One consistent point-in-time copy: a single sweep over all
    /// shards. Every statistic ([`HistogramSnapshot::len`],
    /// [`HistogramSnapshot::mean_ns`], [`HistogramSnapshot::quantile_ns`])
    /// is derived from this copy, never from a re-scan of the live cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        let mut sum_ns = 0u64;
        for shard in self.shards.iter() {
            for (acc, cell) in counts.iter_mut().zip(shard.counts.iter()) {
                *acc += cell.load(Ordering::Relaxed);
            }
            sum_ns = sum_ns.wrapping_add(shard.sum_ns.load(Ordering::Relaxed));
        }
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum_ns,
        }
    }
}

/// A frozen copy of a [`Histogram`]'s cells; all statistics derive from
/// the same instant, so `len`, `mean_ns` and every quantile agree.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values (ns).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Per-bucket counts (bucket `i` covers [`Histogram::bucket_bounds`]).
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64
    }

    /// The `q`-quantile in nanoseconds, `q` in `[0, 1]`, with linear
    /// interpolation inside the containing bucket: samples in a bucket
    /// are assumed uniformly spread over `[lo, hi)`, so the estimate is
    /// `lo + (hi - lo) · rank_within_bucket / bucket_count` instead of
    /// the bucket's upper bound. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && (seen + c) as f64 >= rank {
                let (lo, hi) = Histogram::bucket_bounds(i);
                let frac = (rank - seen as f64) / c as f64;
                return lo as f64 + (hi - lo) as f64 * frac;
            }
            seen += c;
        }
        // Unreachable while count == sum(counts); keep a sane fallback.
        Histogram::bucket_bounds(BUCKETS - 1).1 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_nanoseconds() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 0);
        assert_eq!(Histogram::bucket(2), 1);
        assert_eq!(Histogram::bucket(3), 1);
        assert_eq!(Histogram::bucket(4), 2);
        assert_eq!(Histogram::bucket(1024), 10);
        assert_eq!(Histogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 2));
        for i in 1..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, Histogram::bucket_bounds(i - 1).1);
            assert_eq!(hi, 2 * lo);
        }
    }

    #[test]
    fn snapshot_is_internally_consistent() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(5000);
        }
        let s = h.snapshot();
        assert_eq!(s.len(), 100);
        assert_eq!(s.sum_ns(), 90 * 100 + 10 * 5000);
        assert_eq!(s.counts().iter().sum::<u64>(), s.len());
        assert!((s.mean_ns() - 590.0).abs() < 1e-9);
        // p50 lands in bucket [64, 128); p99 in [4096, 8192).
        let p50 = s.quantile_ns(0.5);
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile_ns(0.99);
        assert!((4096.0..8192.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn interpolation_moves_within_the_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_ns(70); // all in bucket [64, 128)
        }
        let s = h.snapshot();
        // Low quantiles sit near the bucket's low edge, high near the top.
        assert!(s.quantile_ns(0.01) < s.quantile_ns(0.99));
        assert!(s.quantile_ns(1.0) <= 128.0);
        assert!(s.quantile_ns(0.0) > 64.0 - 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile_ns(0.5), 0.0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn duration_recording_saturates_not_wraps() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        let s = h.snapshot();
        assert_eq!(s.len(), 1);
        assert_eq!(s.sum_ns(), 3000);
    }

    #[test]
    fn clones_share_cells() {
        let h = Histogram::new();
        let h2 = h.clone();
        h.record_ns(10);
        h2.record_ns(20);
        assert_eq!(h.snapshot().len(), 2);
    }
}

//! RAII span tracing with thread-local span stacks and a bounded
//! lock-free ring-buffer event sink.
//!
//! Span names are interned once into a [`SpanId`] (an index into a
//! global name table), mirroring the registry's resolve-once handle
//! model: the hot path never hashes or allocates. Entering a span when
//! tracing is disabled — the default — costs one relaxed load and a
//! branch; the guard holds no timestamp, so not even `Instant::now` is
//! paid. When enabled, the guard records its start, pushes its id on a
//! thread-local stack (which is how nesting and parent attribution
//! work), and on drop writes one event into the global [`RingSink`].
//!
//! The sink is a fixed-capacity ring of atomic slots written without
//! locks or unsafe code: a writer claims a ticket with one
//! `fetch_add`, then seq-stamps the slot around its field stores so a
//! concurrent reader can detect and discard torn slots — the classic
//! seqlock shape, built purely from `AtomicU64`s. Old events are
//! overwritten, never block a writer.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-wide tracing switch; off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables tracing.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Interned span names: a `SpanId` is an index into this table.
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Sentinel for "no parent" in ring slots.
const NO_PARENT: u64 = u64::MAX;

/// The instant all event timestamps are relative to (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A pre-resolved span name: register once (typically at context or
/// engine construction), then [`SpanId::enter`] from the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// Interns `name`, returning its id. Idempotent: the same name
    /// always maps to the same id.
    pub fn register(name: &'static str) -> Self {
        let mut names = NAMES.lock().expect("span name table poisoned");
        if let Some(i) = names.iter().position(|n| *n == name) {
            return SpanId(i as u32);
        }
        names.push(name);
        SpanId((names.len() - 1) as u32)
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        name_of(self.0)
    }

    /// Opens a span. When tracing is disabled this is one relaxed load
    /// and a branch — no clock read, no thread-local access.
    #[inline]
    pub fn enter(self) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        Span::open(self)
    }
}

fn name_of(id: u32) -> &'static str {
    NAMES
        .lock()
        .expect("span name table poisoned")
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

thread_local! {
    /// The ids of currently-open spans on this thread, innermost last.
    static STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

struct SpanInner {
    id: u32,
    parent: u64,
    depth: u32,
    start: Instant,
}

/// An RAII span guard: records one event into the global sink when
/// dropped (if it was opened with tracing enabled).
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    #[cold]
    fn open(id: SpanId) -> Span {
        // Pin the epoch before taking `start` so start >= epoch.
        epoch();
        let (parent, depth) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().map_or(NO_PARENT, |&p| p as u64);
            let depth = s.len() as u32;
            s.push(id.0);
            (parent, depth)
        });
        Span {
            inner: Some(SpanInner {
                id: id.0,
                parent,
                depth,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let start_ns = inner
                .start
                .saturating_duration_since(epoch())
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
            sink().push_raw(inner.id, inner.parent, inner.depth, start_ns, dur_ns);
        }
    }
}

/// One completed span read back out of the sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's interned name.
    pub name: &'static str,
    /// The enclosing span's name, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth at open (0 = root).
    pub depth: u32,
    /// Start, in nanoseconds since the process tracing epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Slot {
    /// `ticket + 1` once the slot's fields are consistent, 0 while a
    /// write is in flight; readers discard on mismatch.
    seq: AtomicU64,
    id: AtomicU64,
    parent: AtomicU64,
    depth: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            id: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// Capacity of the global sink (events; older ones are overwritten).
pub const SINK_CAPACITY: usize = 4096;

/// A bounded lock-free ring buffer of span events.
pub struct RingSink {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl RingSink {
    /// A sink holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    fn push_raw(&self, id: u32, parent: u64, depth: u32, start_ns: u64, dur_ns: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.seq.store(0, Ordering::Release);
        slot.id.store(id as u64, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.depth.store(depth as u64, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// The retained events, oldest first. Slots being concurrently
    /// rewritten are detected via their seq stamps and skipped, never
    /// returned torn.
    pub fn events(&self) -> Vec<SpanEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::new();
        for ticket in head.saturating_sub(cap)..head {
            let slot = &self.slots[(ticket % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue;
            }
            let id = slot.id.load(Ordering::Relaxed) as u32;
            let parent = slot.parent.load(Ordering::Relaxed);
            let depth = slot.depth.load(Ordering::Relaxed) as u32;
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                continue;
            }
            out.push(SpanEvent {
                name: name_of(id),
                parent: (parent != NO_PARENT).then(|| name_of(parent as u32)),
                depth,
                start_ns,
                dur_ns,
            });
        }
        out
    }
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RingSink {{ capacity: {}, recorded: {} }}",
            self.slots.len(),
            self.recorded()
        )
    }
}

/// The global event sink all [`Span`] guards write into.
pub fn sink() -> &'static RingSink {
    static SINK: OnceLock<RingSink> = OnceLock::new();
    SINK.get_or_init(|| RingSink::new(SINK_CAPACITY))
}

/// Aggregated time attributed to one span name across the retained
/// events — the pipeline-phase breakdown view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Span name.
    pub name: &'static str,
    /// Completed spans retained in the sink.
    pub count: u64,
    /// Summed duration (ns).
    pub total_ns: u64,
}

/// Sums the global sink's retained events by span name, sorted by name —
/// e.g. `encrypt.sample` / `encrypt.ntt` / `encrypt.pointwise` /
/// `encrypt.encode` become one row each.
pub fn phase_totals() -> Vec<PhaseTotal> {
    let mut totals: Vec<PhaseTotal> = Vec::new();
    for ev in sink().events() {
        match totals.iter_mut().find(|t| t.name == ev.name) {
            Some(t) => {
                t.count += 1;
                t.total_ns += ev.dur_ns;
            }
            None => totals.push(PhaseTotal {
                name: ev.name,
                count: 1,
                total_ns: ev.dur_ns,
            }),
        }
    }
    totals.sort_by_key(|t| t.name);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let a = SpanId::register("test.reg");
        let b = SpanId::register("test.reg");
        assert_eq!(a, b);
        assert_eq!(a.name(), "test.reg");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        let id = SpanId::register("test.disabled");
        let before = sink().recorded();
        {
            let _s = id.enter();
        }
        assert_eq!(sink().recorded(), before);
    }

    #[test]
    fn enabled_spans_record_nesting() {
        let outer = SpanId::register("test.outer");
        let inner = SpanId::register("test.inner");
        set_enabled(true);
        {
            let _o = outer.enter();
            let _i = inner.enter();
        }
        set_enabled(false);
        let events = sink().events();
        let ev = events
            .iter()
            .rev()
            .find(|e| e.name == "test.inner")
            .expect("inner event retained");
        assert_eq!(ev.parent, Some("test.outer"));
        assert_eq!(ev.depth, 1);
        let outer_ev = events
            .iter()
            .rev()
            .find(|e| e.name == "test.outer")
            .expect("outer event retained");
        assert_eq!(outer_ev.parent, None);
        assert_eq!(outer_ev.depth, 0);
        // The inner span closes first and fits inside the outer one.
        assert!(outer_ev.dur_ns >= ev.dur_ns);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = RingSink::new(4);
        let id = SpanId::register("test.ring");
        for i in 0..10u64 {
            ring.push_raw(id.0, NO_PARENT, 0, i, i);
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let events = ring.events();
        assert_eq!(events.len(), 4);
        // Oldest retained first.
        assert_eq!(events[0].start_ns, 6);
        assert_eq!(events[3].start_ns, 9);
    }

    #[test]
    fn concurrent_writers_never_yield_torn_events() {
        let ring = RingSink::new(64);
        let id = SpanId::register("test.torn");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // start_ns and dur_ns always match: a torn read
                        // would surface as a mismatched pair.
                        let v = t * 10_000 + i;
                        ring.push_raw(id.0, NO_PARENT, 0, v, v);
                    }
                });
            }
            for _ in 0..50 {
                for ev in ring.events() {
                    assert_eq!(ev.start_ns, ev.dur_ns, "torn slot surfaced");
                }
            }
        });
        assert_eq!(ring.recorded(), 8000);
    }
}

//! Exposition-format exporters: Prometheus-style text and a JSON
//! snapshot.
//!
//! Both are pure functions of a [`Registry`] — no I/O, no global state
//! beyond the registry handed in — so the future network front-end can
//! serve [`crate::render`]'s output verbatim. Output ordering is fully
//! deterministic (entries sorted by `(name, labels)`), which the golden
//! tests in `tests/golden.rs` pin.

use crate::hist::HistogramSnapshot;
use crate::registry::{ExportEntry, ExportValue, Registry};
use std::fmt::Write;

/// Escapes a label value per the Prometheus text format: `\`, `"` and
/// newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: `\` and newline (quotes are legal there).
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}`, optionally with one extra pair appended
/// (used for the `quantile` label on summary rows). Empty labels render
/// as an empty string.
fn label_block(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (*k, v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// The quantiles exported for every histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

fn write_summary(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    s: &HistogramSnapshot,
) {
    for (q, qs) in QUANTILES {
        let _ = writeln!(
            out,
            "{name}{} {}",
            label_block(labels, Some(("quantile", qs))),
            s.quantile_ns(q)
        );
    }
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        label_block(labels, None),
        s.sum_ns()
    );
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels, None), s.len());
}

/// Renders a registry in Prometheus text exposition format: `# HELP` /
/// `# TYPE` headers once per metric name, then one line per series
/// (histograms as summaries with `quantile` labels plus `_sum` and
/// `_count`). Deterministic: series sorted by `(name, labels)`.
pub fn render_text(reg: &Registry) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for e in reg.export_entries() {
        if e.name != last_name {
            let kind = match e.value {
                ExportValue::Counter(_) => "counter",
                ExportValue::Gauge(_) => "gauge",
                ExportValue::Summary(_) => "summary",
            };
            let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(e.help));
            let _ = writeln!(out, "# TYPE {} {kind}", e.name);
            last_name = e.name;
        }
        match &e.value {
            ExportValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", e.name, label_block(&e.labels, None));
            }
            ExportValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", e.name, label_block(&e.labels, None));
            }
            ExportValue::Summary(s) => write_summary(&mut out, e.name, &e.labels, s),
        }
    }
    out
}

/// Escapes a JSON string's contents.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

fn push_json_entry(out: &mut String, e: &ExportEntry) {
    let _ = write!(
        out,
        "    {{\"name\":\"{}\",\"labels\":{},",
        json_escape(e.name),
        json_labels(&e.labels)
    );
    match &e.value {
        ExportValue::Counter(v) => {
            let _ = write!(out, "\"type\":\"counter\",\"value\":{v}}}");
        }
        ExportValue::Gauge(v) => {
            let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}}}");
        }
        ExportValue::Summary(s) => {
            let _ = write!(
                out,
                "\"type\":\"summary\",\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                s.len(),
                s.sum_ns(),
                s.mean_ns(),
                s.quantile_ns(0.5),
                s.quantile_ns(0.9),
                s.quantile_ns(0.99)
            );
        }
    }
}

/// Renders a registry as a JSON snapshot (hand-rolled, like
/// `rlwe-bench`'s `perf_snapshot`; this workspace has no JSON
/// dependency). Same deterministic ordering as [`render_text`].
pub fn render_json(reg: &Registry) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"metrics\": [\n");
    let entries = reg.export_entries();
    for (i, e) in entries.iter().enumerate() {
        push_json_entry(&mut out, e);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping_covers_the_format_specials() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label("x\ny"), r"x\ny");
    }

    #[test]
    fn empty_registry_renders_empty_text_and_valid_json() {
        let reg = Registry::new();
        assert_eq!(render_text(&reg), "");
        let json = render_json(&reg);
        assert!(json.contains("\"metrics\": [\n  ]"));
    }

    #[test]
    fn counter_line_shape() {
        let reg = Registry::new();
        reg.counter("x_total", "An x.", &[("k", "v")]).add(7);
        let text = render_text(&reg);
        assert!(text.contains("# HELP x_total An x.\n"));
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{k=\"v\"} 7\n"));
    }

    #[test]
    fn summary_emits_quantiles_sum_and_count() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", "Latency.", &[]);
        h.record_ns(100);
        let text = render_text(&reg);
        assert!(text.contains("# TYPE lat_ns summary\n"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_sum 100\n"));
        assert!(text.contains("lat_ns_count 1\n"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let reg = Registry::new();
        reg.counter("a_total", "A.", &[]).inc();
        reg.gauge("g", "G.", &[("k", "v")]).set(-3);
        reg.histogram("h_ns", "H.", &[]).record_ns(5);
        let json = render_json(&reg);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"type\":\"gauge\",\"value\":-3"));
    }
}

//! Unified observability for the rlwe workspace: a metrics registry,
//! RAII span tracing, and exposition-format exporters.
//!
//! Three pieces, all std-only and lock-free on the hot path:
//!
//! - **[`registry`]** — named [`Counter`]s, [`Gauge`]s and sharded
//!   nanosecond [`Histogram`]s with label support. Handles are resolved
//!   *once* at registration (a [`Registry`] lookup under a mutex);
//!   recording through a handle afterwards is a single relaxed atomic
//!   operation, so instrumented hot paths never touch the registry lock.
//! - **[`span`]** — RAII [`Span`] guards with thread-local span stacks
//!   feeding a bounded lock-free ring-buffer event sink. Tracing is off
//!   by default: a disabled span costs one relaxed load and a branch
//!   (measured well under 5 ns — see `rlwe-bench`'s `obs_overhead`
//!   bench arm, which asserts the bound in CI).
//! - **[`export`]** — Prometheus-style text exposition and a JSON
//!   snapshot, both pure functions of a registry so a future network
//!   front-end can serve [`render`] verbatim.
//!
//! The shared aligned-text-table formatter used by `EngineMetrics::report`
//! and `rlwe-m4sim`'s table reproduction lives in [`table`].
//!
//! # No secret data
//!
//! Metric names, label values and span names must be keyed only by
//! *public* data (parameter set, reducer kind, backend, operation name —
//! never key material, messages or noise). Recording a duration or
//! bumping a counter performs no data-dependent branching, so
//! instrumentation cannot perturb constant-time code; the
//! `crates/leakage` invariance gates pin that enabling tracing leaves
//! decapsulation operation traces bit-identical.
//!
//! # Example
//!
//! ```
//! use rlwe_obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", "Cache hits.", &[("tier", "l1")]);
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! let text = rlwe_obs::export::render_text(&reg);
//! assert!(text.contains("cache_hits_total{tier=\"l1\"} 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod span;
pub mod table;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use span::{phase_totals, PhaseTotal, Span, SpanEvent, SpanId};
pub use table::{group_digits, Align, Col, TextTable};

use std::sync::OnceLock;

/// The process-wide default registry. Every crate in the workspace
/// registers its instrumentation here, so one [`render`] call exposes
/// the whole stack.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Renders the global registry in Prometheus text exposition format.
///
/// Pure read: the returned string is exactly what a metrics endpoint
/// should serve.
pub fn render() -> String {
    export::render_text(global())
}

/// Renders the global registry as a JSON snapshot (same hand-rolled
/// idiom as `rlwe-bench`'s `perf_snapshot`).
pub fn render_json() -> String {
    export::render_json(global())
}

/// Enables or disables span tracing process-wide. Off by default.
pub fn set_tracing(on: bool) {
    span::set_enabled(on)
}

/// Whether span tracing is currently enabled.
pub fn tracing_enabled() -> bool {
    span::enabled()
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_is_a_singleton() {
        let a = super::global() as *const _;
        let b = super::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn tracing_toggle_round_trips() {
        // Other tests share the flag; just exercise both transitions.
        super::set_tracing(true);
        assert!(super::tracing_enabled());
        super::set_tracing(false);
        assert!(!super::tracing_enabled());
    }
}

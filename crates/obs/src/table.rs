//! Aligned text-table formatter shared by `EngineMetrics::report` and
//! `rlwe-m4sim`'s table reproduction binaries.
//!
//! Both used to hand-maintain `format!` strings like
//! `"{:<10} {:>10} {:>8}"` — easy to desynchronize between header and
//! rows. [`TextTable`] keeps one column spec and renders both. Padding
//! follows `format!` minimum-width semantics: cells longer than their
//! column are emitted in full, never truncated.

use std::fmt::Write;

/// Cell alignment within a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
}

/// One column: header text, minimum width, alignment.
#[derive(Debug, Clone)]
pub struct Col {
    header: String,
    width: usize,
    align: Align,
}

impl Col {
    /// A left-aligned column.
    pub fn left(header: impl Into<String>, width: usize) -> Self {
        Self {
            header: header.into(),
            width,
            align: Align::Left,
        }
    }

    /// A right-aligned column.
    pub fn right(header: impl Into<String>, width: usize) -> Self {
        Self {
            header: header.into(),
            width,
            align: Align::Right,
        }
    }
}

fn pad(cell: &str, width: usize, align: Align) -> String {
    match align {
        Align::Left => format!("{cell:<width$}"),
        Align::Right => format!("{cell:>width$}"),
    }
}

/// An aligned text table: fixed columns, accumulated rows.
#[derive(Debug, Clone)]
pub struct TextTable {
    cols: Vec<Col>,
    sep: String,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given columns and a single-space separator.
    pub fn new(cols: Vec<Col>) -> Self {
        Self {
            cols,
            sep: " ".into(),
            rows: Vec::new(),
        }
    }

    /// Replaces the inter-column separator (e.g. `""` when the widths
    /// already include spacing, as in the m4sim tables).
    pub fn separator(mut self, sep: impl Into<String>) -> Self {
        self.sep = sep.into();
        self
    }

    /// Appends one row. Missing cells render empty; extra cells are
    /// appended unpadded.
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    fn line(&self, cells: &[String]) -> String {
        let mut out = String::new();
        let empty = String::new();
        for (i, col) in self.cols.iter().enumerate() {
            if i > 0 {
                out.push_str(&self.sep);
            }
            let cell = cells.get(i).unwrap_or(&empty);
            out.push_str(&pad(cell, col.width, col.align));
        }
        for cell in cells.iter().skip(self.cols.len()) {
            out.push_str(&self.sep);
            out.push_str(cell);
        }
        out
    }

    /// The header row alone (no trailing newline).
    pub fn header_line(&self) -> String {
        let headers: Vec<String> = self.cols.iter().map(|c| c.header.clone()).collect();
        self.line(&headers)
    }

    /// Header plus all rows, one line each, every line
    /// newline-terminated.
    pub fn render(&self) -> String {
        let mut out = self.header_line();
        out.push('\n');
        let _ = write!(out, "{}", self.render_rows());
        out
    }

    /// All data rows without the header, newline-terminated.
    pub fn render_rows(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&self.line(row));
            out.push('\n');
        }
        out
    }
}

/// Renders `1234567` as `1 234 567` — the DATE-paper digit grouping the
/// table binaries use for cycle counts.
pub fn group_digits(v: u64) -> String {
    let digits: Vec<char> = v.to_string().chars().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(*c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_group_in_threes() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1 000");
        assert_eq!(group_digits(2761640), "2 761 640");
    }

    #[test]
    fn matches_format_macro_alignment() {
        let mut t = TextTable::new(vec![Col::left("op", 10), Col::right("ok", 10)]);
        t.row(["encrypt", "6"]);
        assert_eq!(t.header_line(), format!("{:<10} {:>10}", "op", "ok"));
        assert_eq!(t.render_rows(), format!("{:<10} {:>10}\n", "encrypt", "6"));
    }

    #[test]
    fn empty_separator_concatenates_columns() {
        let mut t = TextTable::new(vec![Col::left("a", 4), Col::right("b", 6)]).separator("");
        t.row(["x", "1"]);
        assert_eq!(t.render(), "a        b\nx        1\n");
    }

    #[test]
    fn long_cells_are_never_truncated() {
        let mut t = TextTable::new(vec![Col::left("h", 2)]);
        t.row(["longer-than-two"]);
        assert!(t.render().contains("longer-than-two"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = TextTable::new(vec![Col::left("a", 3), Col::right("b", 3)]);
        t.row(["x"]);
        assert_eq!(t.render_rows(), "x      \n");
    }
}

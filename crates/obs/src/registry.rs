//! The metrics registry: named, labelled counters, gauges and
//! histograms with cheap pre-resolved handles.
//!
//! Registration takes the registry mutex once and returns a handle
//! ([`Counter`], [`Gauge`], [`crate::Histogram`]) that shares the
//! underlying atomic cells; recording through the handle afterwards
//! never touches the lock. Registering the same `(name, labels)` pair
//! again returns a handle to the *same* cells, so independent callers
//! (two engines on the same parameter set, say) aggregate naturally.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter handle; clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter (unregistered; for private/local use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one: a single relaxed atomic add.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`: a single relaxed atomic add.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down); clones share the
/// cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh zeroed gauge (unregistered; for private/local use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    #[inline]
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The three metric kinds a registry entry can hold.
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    metric: Metric,
}

/// A frozen value read out of one registry entry, used by the exporters.
#[derive(Debug, Clone)]
pub(crate) enum ExportValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram snapshot (rendered as a Prometheus summary).
    Summary(Box<HistogramSnapshot>),
}

/// One exportable `(name, help, labels, value)` row.
pub(crate) struct ExportEntry {
    pub name: &'static str,
    pub help: &'static str,
    pub labels: Vec<(&'static str, String)>,
    pub value: ExportValue,
}

/// A collection of named metrics. See the [module docs](self).
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        extract: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> (T, Metric),
    ) -> T {
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
        }) {
            return extract(&e.metric).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    e.metric.kind()
                )
            });
        }
        let (handle, metric) = make();
        entries.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
            metric,
        });
        handle
    }

    /// Registers (or re-resolves) a counter. Labels are `(key, value)`
    /// pairs; the same `(name, labels)` always yields the same cell.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// Registers (or re-resolves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric kind.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// Registers (or re-resolves) a nanosecond histogram.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric kind.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Histogram {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Number of registered `(name, labels)` entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock poisoned").len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frozen, deterministically ordered values for the exporters:
    /// sorted by `(name, labels)` so renders are stable regardless of
    /// registration order.
    pub(crate) fn export_entries(&self) -> Vec<ExportEntry> {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut out: Vec<ExportEntry> = entries
            .iter()
            .map(|e| ExportEntry {
                name: e.name,
                help: e.help,
                labels: e.labels.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => ExportValue::Counter(c.get()),
                    Metric::Gauge(g) => ExportValue::Gauge(g.get()),
                    Metric::Histogram(h) => ExportValue::Summary(Box::new(h.snapshot())),
                },
            })
            .collect();
        out.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry {{ entries: {} }}", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_the_cell() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "X.", &[("k", "v")]);
        let b = reg.counter("x_total", "X.", &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn different_labels_are_distinct_series() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "X.", &[("k", "a")]);
        let b = reg.counter("x_total", "X.", &[("k", "b")]);
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x_total", "X.", &[]);
        let _ = reg.gauge("x_total", "X.", &[]);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Registry::new().gauge("depth", "D.", &[]);
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn export_entries_are_sorted() {
        let reg = Registry::new();
        let _ = reg.counter("b_total", "B.", &[]);
        let _ = reg.counter("a_total", "A.", &[("k", "z")]);
        let _ = reg.counter("a_total", "A.", &[("k", "a")]);
        let names: Vec<String> = reg
            .export_entries()
            .iter()
            .map(|e| format!("{}{:?}", e.name, e.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}

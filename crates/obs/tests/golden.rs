//! Golden test for the text exposition format: ordering, escaping and
//! label rendering are pinned byte-for-byte so the output a metrics
//! endpoint would serve never drifts silently.

use rlwe_obs::{export, Registry};

#[test]
fn exposition_format_matches_the_golden_output() {
    let reg = Registry::new();
    // Registered deliberately out of name order: the render must sort.
    reg.counter(
        "rlwe_pool_hits_total",
        "Context pool cache hits.",
        &[("param_set", "P2")],
    )
    .add(2);
    reg.counter(
        "rlwe_pool_hits_total",
        "Context pool cache hits.",
        &[("param_set", "P1")],
    )
    .add(7);
    reg.gauge("rlwe_batch_queue_depth", "Items in flight.", &[])
        .set(3);
    let h = reg.histogram(
        "rlwe_kem_op_ns",
        "KEM operation latency.",
        &[("op", "decap"), ("param_set", "P1")],
    );
    for _ in 0..4 {
        h.record_ns(96); // bucket [64, 128)
    }
    reg.counter(
        "weird_total",
        "Help with a \\ backslash.",
        &[("path", "a\\b\"c\nd")],
    )
    .inc();

    let expected = concat!(
        "# HELP rlwe_batch_queue_depth Items in flight.\n",
        "# TYPE rlwe_batch_queue_depth gauge\n",
        "rlwe_batch_queue_depth 3\n",
        "# HELP rlwe_kem_op_ns KEM operation latency.\n",
        "# TYPE rlwe_kem_op_ns summary\n",
        "rlwe_kem_op_ns{op=\"decap\",param_set=\"P1\",quantile=\"0.5\"} 96\n",
        "rlwe_kem_op_ns{op=\"decap\",param_set=\"P1\",quantile=\"0.9\"} 128\n",
        "rlwe_kem_op_ns{op=\"decap\",param_set=\"P1\",quantile=\"0.99\"} 128\n",
        "rlwe_kem_op_ns_sum{op=\"decap\",param_set=\"P1\"} 384\n",
        "rlwe_kem_op_ns_count{op=\"decap\",param_set=\"P1\"} 4\n",
        "# HELP rlwe_pool_hits_total Context pool cache hits.\n",
        "# TYPE rlwe_pool_hits_total counter\n",
        "rlwe_pool_hits_total{param_set=\"P1\"} 7\n",
        "rlwe_pool_hits_total{param_set=\"P2\"} 2\n",
        "# HELP weird_total Help with a \\\\ backslash.\n",
        "# TYPE weird_total counter\n",
        "weird_total{path=\"a\\\\b\\\"c\\nd\"} 1\n",
    );
    assert_eq!(export::render_text(&reg), expected);
}

#[test]
fn json_snapshot_matches_the_golden_output() {
    let reg = Registry::new();
    reg.counter("a_total", "A.", &[("k", "v\"w")]).add(5);
    reg.gauge("depth", "D.", &[]).set(-2);
    let expected = concat!(
        "{\n",
        "  \"schema\": 1,\n",
        "  \"metrics\": [\n",
        "    {\"name\":\"a_total\",\"labels\":{\"k\":\"v\\\"w\"},\"type\":\"counter\",\"value\":5},\n",
        "    {\"name\":\"depth\",\"labels\":{},\"type\":\"gauge\",\"value\":-2}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(export::render_json(&reg), expected);
}

#[test]
fn render_is_stable_across_repeated_calls() {
    let reg = Registry::new();
    reg.counter("x_total", "X.", &[("b", "2")]).inc();
    reg.counter("x_total", "X.", &[("a", "1")]).inc();
    let first = export::render_text(&reg);
    for _ in 0..5 {
        assert_eq!(export::render_text(&reg), first);
    }
}

//! Histogram quantile property test against a sorted-vector oracle:
//! the interpolated estimate must land inside the bucket containing the
//! true order statistic, quantiles must be monotone in `q`, and the
//! mean must be exact (the sum is tracked exactly, not bucketed).

use proptest::prelude::*;
use rlwe_obs::hist::{Histogram, BUCKETS};

/// The bucket index `Histogram` files `v` under (mirrors the private
/// `bucket` fn; pinned here so the oracle and the histogram agree).
fn bucket_of(v: u64) -> usize {
    ((63 - v.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_land_in_the_oracle_bucket(
        values in prop::collection::vec(1u64..1_000_000_000, 1..=300),
        q_permille in prop::collection::vec(0u32..=1000, 4),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.len(), values.len() as u64);
        for q in q_permille.iter().map(|&p| p as f64 / 1000.0) {
            // True order statistic at rank ceil(q·n), 1-based.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let oracle = sorted[rank - 1];
            let (lo, hi) = Histogram::bucket_bounds(bucket_of(oracle));
            let est = snap.quantile_ns(q);
            prop_assert!(
                est >= lo as f64 && est <= hi as f64,
                "q={} est={} oracle={} bucket=[{}, {})",
                q, est, oracle, lo, hi
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in prop::collection::vec(1u64..1_000_000, 2..=200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        let mut last = 0.0f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = snap.quantile_ns(q);
            prop_assert!(est >= last, "q={} est={} < previous {}", q, est, last);
            last = est;
        }
    }

    #[test]
    fn mean_is_exact_not_bucketed(
        values in prop::collection::vec(1u64..1_000_000, 1..=200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((snap.mean_ns() - exact).abs() < 1e-6);
    }
}

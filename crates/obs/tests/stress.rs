//! Concurrent-recording stress: N threads × M ops through shared
//! registry handles must yield exact final totals — no lost updates,
//! no torn histogram state.

use rlwe_obs::Registry;

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn counters_total_exactly_under_contention() {
    let reg = Registry::new();
    let c = reg.counter("stress_total", "Stress counter.", &[]);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..OPS {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * OPS);
}

#[test]
fn gauge_balances_exactly_under_contention() {
    let reg = Registry::new();
    let g = reg.gauge("stress_depth", "Stress gauge.", &[]);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let g = g.clone();
            s.spawn(move || {
                for _ in 0..OPS {
                    g.add(3);
                    g.sub(2);
                }
            });
        }
    });
    assert_eq!(g.get(), (THREADS as u64 * OPS) as i64);
}

#[test]
fn histogram_count_and_sum_are_exact_under_contention() {
    let reg = Registry::new();
    let h = reg.histogram("stress_ns", "Stress histogram.", &[]);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    // Deterministic per-thread values so the exact
                    // expected sum is computable.
                    h.record_ns((t as u64 + 1) * 100 + (i % 7));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.len(), THREADS as u64 * OPS);
    let expected: u64 = (0..THREADS as u64)
        .map(|t| (0..OPS).map(|i| (t + 1) * 100 + (i % 7)).sum::<u64>())
        .sum();
    assert_eq!(snap.sum_ns(), expected);
    assert_eq!(snap.counts().iter().sum::<u64>(), snap.len());
}

#[test]
fn snapshots_taken_mid_stream_are_internally_consistent() {
    // The original engine histogram derived len/mean/quantiles from
    // independent re-scans, so a concurrent report could mix points in
    // time. A snapshot must always satisfy count == Σ buckets and carry
    // a finite mean while writers are running.
    let reg = Registry::new();
    let h = reg.histogram("stress_consistency_ns", "Stress histogram.", &[]);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for _ in 0..OPS {
                    h.record_ns(1000);
                }
            });
        }
        for _ in 0..200 {
            let snap = h.snapshot();
            assert_eq!(snap.counts().iter().sum::<u64>(), snap.len());
            if !snap.is_empty() {
                // Every recorded value is exactly 1000 ns: any consistent
                // snapshot must agree on the mean.
                assert_eq!(snap.sum_ns(), snap.len() * 1000);
                assert_eq!(snap.mean_ns(), 1000.0);
            }
        }
    });
}

#[test]
fn concurrent_registration_of_one_series_yields_one_cell() {
    let reg = Registry::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let reg = &reg;
            s.spawn(move || {
                for _ in 0..100 {
                    reg.counter("stress_reg_total", "Stress.", &[("k", "v")])
                        .inc();
                }
            });
        }
    });
    assert_eq!(reg.len(), 1);
    assert_eq!(
        reg.counter("stress_reg_total", "Stress.", &[("k", "v")])
            .get(),
        THREADS as u64 * 100
    );
}

//! Perf-snapshot data model and (dependency-free) JSON rendering.
//!
//! The build environment is offline, so instead of `serde` the snapshot
//! serializes itself with a small hand-rolled writer. The format is a
//! stable flat shape downstream tooling can diff across PRs:
//!
//! ```json
//! {
//!   "schema": "rlwe-bench/perf-snapshot/v1",
//!   "pr": 4,
//!   "smoke": false,
//!   "entries": [
//!     {"name": "ntt_forward_p1_n256", "ns_per_op": 1234.5, "ops_per_sec": 810372.0}
//!   ]
//! }
//! ```

/// One measured benchmark: a name plus ns/op and the derived ops/s.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Stable machine-readable benchmark name (`snake_case`).
    pub name: String,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second (`1e9 / ns_per_op`).
    pub ops_per_sec: f64,
}

impl SnapshotEntry {
    /// Builds an entry from a ns/op measurement.
    pub fn ns(name: impl Into<String>, ns_per_op: f64) -> Self {
        let ops = if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            0.0
        };
        Self {
            name: name.into(),
            ns_per_op,
            ops_per_sec: ops,
        }
    }
}

/// A full snapshot: PR number, measurement mode and the entry list.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pr: u32,
    smoke: bool,
    entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// An empty snapshot for PR `pr`; `smoke` records whether the numbers
    /// came from the abbreviated CI run.
    pub fn new(pr: u32, smoke: bool) -> Self {
        Self {
            pr,
            smoke,
            entries: Vec::new(),
        }
    }

    /// Appends one measurement.
    pub fn push(&mut self, entry: SnapshotEntry) {
        self.entries.push(entry);
    }

    /// The measurements collected so far.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Renders the snapshot as a JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rlwe-bench/perf-snapshot/v1\",\n");
        out.push_str(&format!("  \"pr\": {},\n", self.pr));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"ops_per_sec\": {}}}{comma}\n",
                json_escape(&e.name),
                fmt_f64(e.ns_per_op),
                fmt_f64(e.ops_per_sec)
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Formats a float with one fractional digit — enough resolution for
/// nanosecond timings, stable across runs for diffs.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "0.0".to_string()
    }
}

/// Escapes the two JSON-significant characters benchmark names could
/// plausibly contain (names are ASCII identifiers by convention).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_derives_ops_per_sec() {
        let e = SnapshotEntry::ns("x", 2000.0);
        assert_eq!(e.ops_per_sec, 500_000.0);
        assert_eq!(SnapshotEntry::ns("z", 0.0).ops_per_sec, 0.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut s = Snapshot::new(4, true);
        s.push(SnapshotEntry::ns("ntt_forward_p1_n256", 1234.56));
        s.push(SnapshotEntry::ns("encrypt_p1", 100.0));
        let j = s.to_json();
        assert!(j.contains("\"schema\": \"rlwe-bench/perf-snapshot/v1\""));
        assert!(j.contains("\"pr\": 4"));
        assert!(j.contains("\"smoke\": true"));
        assert!(j.contains("\"name\": \"ntt_forward_p1_n256\", \"ns_per_op\": 1234.6"));
        assert!(j.contains("\"ops_per_sec\": 10000000.0"));
        // Exactly one comma between the two entries, none after the last.
        assert_eq!(j.matches("}},\n").count(), 0);
        assert_eq!(j.matches("},\n").count(), 1);
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}

//! Machine-readable performance snapshot of the suite's hot paths.
//!
//! Measures the NTT (forward/inverse), full negacyclic multiplication and
//! the scheme's encrypt/decrypt throughput on this host, and — with
//! `--json` — writes the numbers as a `BENCH_<PR>.json` snapshot so the
//! repository accumulates a benchmark trajectory across PRs.
//!
//! Since PR 5 every arm comes in two flavours: the default names
//! (`ntt_forward_p1_n256`, `encrypt_p2`, …) measure what the suite
//! actually runs — the **specialized** `Q7681`/`Q12289` reducer plans
//! the dispatch layer selects for the paper's parameter sets — while the
//! `_generic` siblings force the runtime-Barrett fallback on the same
//! ring, making the specialization ablation a one-file diff (DESIGN.md
//! §7).
//!
//! ```text
//! cargo run --release -p rlwe-bench --bin perf_snapshot            # print only
//! cargo run --release -p rlwe-bench --bin perf_snapshot -- --json  # + BENCH_5.json
//! cargo run --release -p rlwe-bench --bin perf_snapshot -- --smoke # CI: few reps
//! ```
//!
//! `--json [PATH]` defaults to `BENCH_5.json` in the working directory;
//! `--smoke` cuts repetition counts ~100× so CI can exercise the binary in
//! seconds (the numbers are then smoke-quality — trend data comes from
//! full runs).

use std::time::Instant;

use rlwe_bench::snapshot::{Snapshot, SnapshotEntry};

/// The PR this snapshot belongs to — bump once per PR; it names the
/// default `--json` output file and is recorded inside the document.
const PR: u32 = 5;
use rlwe_core::drbg::HashDrbg;
use rlwe_core::{ParamSet, ReducerPreference, RlweContext};
use rlwe_ntt::NttPlan;
use rlwe_zq::reduce::{Q12289, Q7681};
use rlwe_zq::Reducer;

/// Times `f` over `reps` repetitions (after one warm-up call) and returns
/// nanoseconds per call.
fn time_ns<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn demo(n: usize, q: u32, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(seed) + 1) % q)
        .collect()
}

/// NTT-layer arms for one plan instantiation; callers pass the full
/// `label` — the bare ring name (`"p1_n256"`) for the dispatched
/// specialized plan, the `_generic`-suffixed form for the forced
/// runtime-Barrett ablation arm.
fn bench_ntt_plan<R: Reducer>(snap: &mut Snapshot, plan: &NttPlan<R>, label: &str, ntt_reps: u32) {
    let n = plan.n();
    let q = plan.q();
    let poly = demo(n, q, 31);
    let other = demo(n, q, 77);

    let mut buf = poly.clone();
    let fwd = time_ns(
        || {
            buf.copy_from_slice(&poly);
            plan.forward(std::hint::black_box(&mut buf));
        },
        ntt_reps,
    );
    snap.push(SnapshotEntry::ns(format!("ntt_forward_{label}"), fwd));

    let hat = plan.forward_copy(&poly);
    let inv = time_ns(
        || {
            buf.copy_from_slice(&hat);
            plan.inverse(std::hint::black_box(&mut buf));
        },
        ntt_reps,
    );
    snap.push(SnapshotEntry::ns(format!("ntt_inverse_{label}"), inv));

    let mut out = vec![0u32; n];
    let mut scratch = rlwe_ntt::PolyScratch::new(n);
    let mul = time_ns(
        || {
            plan.negacyclic_mul_into(
                std::hint::black_box(&poly),
                std::hint::black_box(&other),
                &mut out,
                &mut scratch,
            )
            .expect("lengths match");
        },
        ntt_reps / 2,
    );
    snap.push(SnapshotEntry::ns(format!("negacyclic_mul_{label}"), mul));
}

/// Scheme-layer arms (encrypt/decrypt) for one context; `label` as in
/// [`bench_ntt_plan`].
fn bench_scheme(snap: &mut Snapshot, ctx: &RlweContext, label: &str, scheme_reps: u32) {
    let mut rng = HashDrbg::new([7u8; 32]);
    let (pk, sk) = ctx.generate_keypair(&mut rng).expect("keygen");
    let msg = vec![0xA5u8; ctx.params().message_bytes()];
    let mut scratch = ctx.new_scratch();
    let mut ct = ctx.empty_ciphertext();
    ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
        .expect("encrypt");

    let enc = time_ns(
        || {
            ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
                .expect("encrypt");
        },
        scheme_reps,
    );
    snap.push(SnapshotEntry::ns(format!("encrypt_{label}"), enc));

    let mut pt = vec![0u8; ctx.params().message_bytes()];
    let dec = time_ns(
        || {
            ctx.decrypt_into(&sk, &ct, &mut pt, &mut scratch)
                .expect("decrypt");
        },
        scheme_reps,
    );
    snap.push(SnapshotEntry::ns(format!("decrypt_{label}"), dec));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| format!("BENCH_{PR}.json"))
    });

    let (ntt_reps, scheme_reps): (u32, u32) = if smoke { (50, 5) } else { (20_000, 500) };
    let mut snap = Snapshot::new(PR, smoke);

    println!(
        "PERF SNAPSHOT ({} mode, ns/op and ops/s, this host)\n",
        if smoke { "smoke" } else { "full" }
    );
    println!("{:<34}{:>14}{:>16}", "benchmark", "ns/op", "ops/s");

    // --- NTT layer: specialized (the dispatched default) vs generic ------
    let p1 = NttPlan::with_reducer(256, Q7681).expect("paper ring");
    bench_ntt_plan(&mut snap, &p1, "p1_n256", ntt_reps);
    let p1_gen = NttPlan::new(256, 7681).expect("paper ring");
    bench_ntt_plan(&mut snap, &p1_gen, "p1_n256_generic", ntt_reps);

    let p2 = NttPlan::with_reducer(512, Q12289).expect("paper ring");
    bench_ntt_plan(&mut snap, &p2, "p2_n512", ntt_reps);
    let p2_gen = NttPlan::new(512, 12289).expect("paper ring");
    bench_ntt_plan(&mut snap, &p2_gen, "p2_n512_generic", ntt_reps);

    // --- Scheme layer: dispatched context vs forced-generic context ------
    for set in [ParamSet::P1, ParamSet::P2] {
        let label = match set {
            ParamSet::P1 => "p1",
            ParamSet::P2 => "p2",
        };
        let ctx = RlweContext::new(set).expect("named set");
        assert_ne!(
            ctx.reducer_kind(),
            rlwe_zq::ReducerKind::Barrett,
            "default context must dispatch to the specialized plan"
        );
        bench_scheme(&mut snap, &ctx, label, scheme_reps);
        let generic_ctx = RlweContext::builder(set)
            .reducer_preference(ReducerPreference::Generic)
            .build()
            .expect("named set");
        bench_scheme(
            &mut snap,
            &generic_ctx,
            &format!("{label}_generic"),
            scheme_reps,
        );
    }

    for e in snap.entries() {
        println!("{:<34}{:>14.1}{:>16.0}", e.name, e.ns_per_op, e.ops_per_sec);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, snap.to_json()).expect("write snapshot");
        println!("\nwrote {path}");
    }
}

//! Machine-readable performance snapshot of the suite's hot paths.
//!
//! Measures the NTT (forward/inverse), full negacyclic multiplication and
//! the scheme's encrypt/decrypt throughput on this host, and — with
//! `--json` — writes the numbers as a `BENCH_<PR>.json` snapshot so the
//! repository accumulates a benchmark trajectory across PRs.
//!
//! Since PR 5 every arm comes in two flavours: the default names
//! (`ntt_forward_p1_n256`, `encrypt_p2`, …) measure what the suite
//! actually runs — the **specialized** `Q7681`/`Q12289` reducer plans
//! the dispatch layer selects for the paper's parameter sets — while the
//! `_generic` siblings force the runtime-Barrett fallback on the same
//! ring, making the specialization ablation a one-file diff (DESIGN.md
//! §7).
//!
//! ```text
//! cargo run --release -p rlwe-bench --bin perf_snapshot            # print only
//! cargo run --release -p rlwe-bench --bin perf_snapshot -- --json  # + BENCH_7.json
//! cargo run --release -p rlwe-bench --bin perf_snapshot -- --smoke # CI: few reps
//! ```
//!
//! `--json [PATH]` defaults to `BENCH_7.json` in the working directory;
//! `--smoke` cuts repetition counts ~100× so CI can exercise the binary in
//! seconds (the numbers are then smoke-quality — trend data comes from
//! full runs).

use std::time::Instant;

use rlwe_bench::snapshot::{Snapshot, SnapshotEntry};

/// The PR this snapshot belongs to — bump once per PR; it names the
/// default `--json` output file and is recorded inside the document.
const PR: u32 = 7;
use rlwe_core::drbg::HashDrbg;
use rlwe_core::{NttBackend, ParamSet, ReducerPreference, RlweContext};
use rlwe_ntt::NttPlan;
use rlwe_sampler::ct::CtCdtSampler;
use rlwe_sampler::random::{BitSource, BufferedBitSource, SplitMix64};
use rlwe_sampler::ProbabilityMatrix;
use rlwe_zq::reduce::{Q12289, Q7681};
use rlwe_zq::Reducer;

/// Times `f` over `reps` repetitions (after one warm-up call) and returns
/// nanoseconds per call.
fn time_ns<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn demo(n: usize, q: u32, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(seed) + 1) % q)
        .collect()
}

/// NTT-layer arms for one plan instantiation; callers pass the full
/// `label` — the bare ring name (`"p1_n256"`) for the dispatched
/// specialized plan, the `_generic`-suffixed form for the forced
/// runtime-Barrett ablation arm.
fn bench_ntt_plan<R: Reducer>(snap: &mut Snapshot, plan: &NttPlan<R>, label: &str, ntt_reps: u32) {
    let n = plan.n();
    let q = plan.q();
    let poly = demo(n, q, 31);
    let other = demo(n, q, 77);

    let mut buf = poly.clone();
    let fwd = time_ns(
        || {
            buf.copy_from_slice(&poly);
            plan.forward(std::hint::black_box(&mut buf));
        },
        ntt_reps,
    );
    snap.push(SnapshotEntry::ns(format!("ntt_forward_{label}"), fwd));

    let hat = plan.forward_copy(&poly);
    let inv = time_ns(
        || {
            buf.copy_from_slice(&hat);
            plan.inverse(std::hint::black_box(&mut buf));
        },
        ntt_reps,
    );
    snap.push(SnapshotEntry::ns(format!("ntt_inverse_{label}"), inv));

    let mut out = vec![0u32; n];
    let mut scratch = rlwe_ntt::PolyScratch::new(n);
    let mul = time_ns(
        || {
            plan.negacyclic_mul_into(
                std::hint::black_box(&poly),
                std::hint::black_box(&other),
                &mut out,
                &mut scratch,
            )
            .expect("lengths match");
        },
        ntt_reps / 2,
    );
    snap.push(SnapshotEntry::ns(format!("negacyclic_mul_{label}"), mul));
}

/// Vector-backend NTT arms for one plan: the single-polynomial AVX2
/// transform (`_avx2`) and the eight-way interleaved transform
/// (`_interleaved8`, reported **per polynomial**). On hosts without
/// AVX2 these measure the bit-identical scalar fallback — the snapshot
/// records whether the vector unit was live in `avx2_host`.
fn bench_ntt_avx2<R: Reducer>(snap: &mut Snapshot, plan: &NttPlan<R>, label: &str, ntt_reps: u32) {
    let n = plan.n();
    let q = plan.q();
    let poly = demo(n, q, 31);

    let mut buf = poly.clone();
    let fwd = time_ns(
        || {
            buf.copy_from_slice(&poly);
            plan.forward_avx2(std::hint::black_box(&mut buf));
        },
        ntt_reps,
    );
    snap.push(SnapshotEntry::ns(format!("ntt_forward_{label}_avx2"), fwd));

    let hat = plan.forward_copy(&poly);
    let inv = time_ns(
        || {
            buf.copy_from_slice(&hat);
            plan.inverse_avx2(std::hint::black_box(&mut buf));
        },
        ntt_reps,
    );
    snap.push(SnapshotEntry::ns(format!("ntt_inverse_{label}_avx2"), inv));

    let refs: Vec<&[u32]> = (0..8).map(|_| poly.as_slice()).collect();
    let mut wide = vec![0u32; 8 * n];
    rlwe_ntt::avx2::interleave8_into(&refs, n, &mut wide);
    let template = wide.clone();
    let fwd8 = time_ns(
        || {
            wide.copy_from_slice(&template);
            plan.forward_interleaved8(std::hint::black_box(&mut wide));
        },
        ntt_reps / 4,
    );
    snap.push(SnapshotEntry::ns(
        format!("ntt_forward_{label}_interleaved8"),
        fwd8 / 8.0,
    ));
}

/// Pre-PR-7 bit-source behavior for the sampler ablation: forwards only
/// `take_bit`, so `take_bits` falls back to the trait's per-bit loop,
/// and wraps an *unbuffered* source, so every register refill is a
/// single-word fetch. Together these reproduce the scalar baseline the
/// bulk-refill and word-at-a-time fast paths replaced.
struct BitAtATime<B>(B);

impl<B: BitSource> BitSource for BitAtATime<B> {
    fn take_bit(&mut self) -> u32 {
        self.0.take_bit()
    }
    fn bits_drawn(&self) -> u64 {
        self.0.bits_drawn()
    }
}

/// Sampler ablation arms (ns **per sample**, constant-time CDT rung,
/// one ring-sized fill per measurement): the pre-PR scalar baseline
/// (`_scalar`), the bulk-refill + word-wise bit extraction path on the
/// same per-sample kernel (`_bulk`), the 8-lane table scan (`_avx2`
/// where the host has it — otherwise the bit-identical scalar kernel),
/// and the lane-parallel interleaved fill the fused grouped encrypt
/// uses (`_interleaved8`, per sample across all eight lanes).
fn bench_sampler<R: Reducer>(
    snap: &mut Snapshot,
    pmat: &ProbabilityMatrix,
    r: R,
    n: usize,
    label: &str,
    reps: u32,
) {
    let ct = CtCdtSampler::new(pmat);
    let mut out = vec![0u32; n];

    let scalar = time_ns(
        || {
            let mut bits = BitAtATime(BufferedBitSource::new(SplitMix64::new(0x5EED)));
            for c in out.iter_mut() {
                *c = ct.sample(&mut bits).to_zq_with(&r);
            }
            std::hint::black_box(&out);
        },
        reps,
    );
    snap.push(SnapshotEntry::ns(
        format!("sample_ct_{label}_scalar"),
        scalar / n as f64,
    ));

    let bulk = time_ns(
        || {
            let mut bits = BufferedBitSource::buffered(SplitMix64::new(0x5EED));
            for c in out.iter_mut() {
                *c = ct.sample(&mut bits).to_zq_with(&r);
            }
            std::hint::black_box(&out);
        },
        reps,
    );
    snap.push(SnapshotEntry::ns(
        format!("sample_ct_{label}_bulk"),
        bulk / n as f64,
    ));

    let vector = time_ns(
        || {
            let mut bits = BufferedBitSource::buffered(SplitMix64::new(0x5EED));
            ct.sample_poly_into(&r, &mut bits, &mut out);
            std::hint::black_box(&out);
        },
        reps,
    );
    snap.push(SnapshotEntry::ns(
        format!("sample_ct_{label}_avx2"),
        vector / n as f64,
    ));

    let mut wide = vec![0u32; 8 * n];
    let fused = time_ns(
        || {
            let mut sources: [BufferedBitSource<SplitMix64>; 8] = std::array::from_fn(|j| {
                BufferedBitSource::buffered(SplitMix64::new(0x5EED ^ ((j as u64) << 56)))
            });
            ct.sample_interleaved8_into(&r, &mut sources, &mut wide);
            std::hint::black_box(&wide);
        },
        reps / 4,
    );
    snap.push(SnapshotEntry::ns(
        format!("sample_ct_{label}_interleaved8"),
        fused / (8 * n) as f64,
    ));
}

/// Scheme-layer arms (encrypt/decrypt) for one context; `label` as in
/// [`bench_ntt_plan`].
fn bench_scheme(snap: &mut Snapshot, ctx: &RlweContext, label: &str, scheme_reps: u32) {
    let mut rng = HashDrbg::new([7u8; 32]);
    let (pk, sk) = ctx.generate_keypair(&mut rng).expect("keygen");
    let msg = vec![0xA5u8; ctx.params().message_bytes()];
    let mut scratch = ctx.new_scratch();
    let mut ct = ctx.empty_ciphertext();
    ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
        .expect("encrypt");

    let enc = time_ns(
        || {
            ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
                .expect("encrypt");
        },
        scheme_reps,
    );
    snap.push(SnapshotEntry::ns(format!("encrypt_{label}"), enc));

    let mut pt = vec![0u8; ctx.params().message_bytes()];
    let dec = time_ns(
        || {
            ctx.decrypt_into(&sk, &ct, &mut pt, &mut scratch)
                .expect("decrypt");
        },
        scheme_reps,
    );
    snap.push(SnapshotEntry::ns(format!("decrypt_{label}"), dec));
}

/// Precompute-ablation arms on one context: encryption through the
/// per-key Shoup tables (`_prepared`) and through the eight-way
/// interleaved group path (`_grouped8`, reported per message).
fn bench_scheme_prepared(snap: &mut Snapshot, ctx: &RlweContext, label: &str, scheme_reps: u32) {
    let mut rng = HashDrbg::new([7u8; 32]);
    let (pk, _) = ctx.generate_keypair(&mut rng).expect("keygen");
    let prepared = ctx.prepare_public_key(&pk).expect("prepare");
    let msg = vec![0xA5u8; ctx.params().message_bytes()];
    let mut scratch = ctx.new_scratch();
    let mut ct = ctx.empty_ciphertext();

    let enc = time_ns(
        || {
            ctx.encrypt_prepared_into(&prepared, &msg, &mut rng, &mut ct, &mut scratch)
                .expect("encrypt");
        },
        scheme_reps,
    );
    snap.push(SnapshotEntry::ns(format!("encrypt_{label}_prepared"), enc));

    let msgs: Vec<&[u8]> = (0..8).map(|_| msg.as_slice()).collect();
    let mut cts: Vec<_> = (0..8).map(|_| ctx.empty_ciphertext()).collect();
    let mut rngs: Vec<HashDrbg> = (0..8)
        .map(|i| HashDrbg::for_stream(&[7u8; 32], i))
        .collect();
    let grp = time_ns(
        || {
            ctx.encrypt_group_into(&prepared, &msgs, &mut rngs, &mut cts, &mut scratch)
                .expect("group encrypt");
        },
        scheme_reps / 4,
    );
    snap.push(SnapshotEntry::ns(
        format!("encrypt_{label}_grouped8"),
        grp / 8.0,
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| format!("BENCH_{PR}.json"))
    });

    let (ntt_reps, scheme_reps): (u32, u32) = if smoke { (50, 5) } else { (20_000, 500) };
    let mut snap = Snapshot::new(PR, smoke);

    println!(
        "PERF SNAPSHOT ({} mode, ns/op and ops/s, this host)\n",
        if smoke { "smoke" } else { "full" }
    );
    println!("{:<34}{:>14}{:>16}", "benchmark", "ns/op", "ops/s");

    // --- NTT layer: specialized (the dispatched default) vs generic ------
    let p1 = NttPlan::with_reducer(256, Q7681).expect("paper ring");
    bench_ntt_plan(&mut snap, &p1, "p1_n256", ntt_reps);
    let p1_gen = NttPlan::new(256, 7681).expect("paper ring");
    bench_ntt_plan(&mut snap, &p1_gen, "p1_n256_generic", ntt_reps);

    let p2 = NttPlan::with_reducer(512, Q12289).expect("paper ring");
    bench_ntt_plan(&mut snap, &p2, "p2_n512", ntt_reps);
    let p2_gen = NttPlan::new(512, 12289).expect("paper ring");
    bench_ntt_plan(&mut snap, &p2_gen, "p2_n512_generic", ntt_reps);

    // --- Vector backend: AVX2 single-poly and interleaved-8 arms ---------
    println!(
        "(avx2 host: {})",
        if rlwe_ntt::avx2::available() {
            "yes"
        } else {
            "no — vector arms measure the scalar fallback"
        }
    );
    bench_ntt_avx2(&mut snap, &p1, "p1_n256", ntt_reps);
    bench_ntt_avx2(&mut snap, &p2, "p2_n512", ntt_reps);

    // --- Sampler layer: CT-CDT rung ablation (scalar / bulk / avx2 /
    // fused-interleaved), ns per sample over one ring-sized fill --------
    println!(
        "(sampler avx2: {})",
        if rlwe_sampler::avx2::available() {
            "yes"
        } else {
            "no — the _avx2/_interleaved8 arms measure the scalar kernel"
        }
    );
    let pmat1 = ProbabilityMatrix::paper_p1().expect("paper table");
    bench_sampler(&mut snap, &pmat1, Q7681, 256, "p1", ntt_reps / 10);
    let pmat2 = ProbabilityMatrix::paper_p2().expect("paper table");
    bench_sampler(&mut snap, &pmat2, Q12289, 512, "p2", ntt_reps / 10);

    // --- Scheme layer: dispatched context vs forced-generic context ------
    for set in [ParamSet::P1, ParamSet::P2] {
        let label = match set {
            ParamSet::P1 => "p1",
            ParamSet::P2 => "p2",
        };
        let ctx = RlweContext::new(set).expect("named set");
        assert_ne!(
            ctx.reducer_kind(),
            rlwe_zq::ReducerKind::Barrett,
            "default context must dispatch to the specialized plan"
        );
        bench_scheme(&mut snap, &ctx, label, scheme_reps);
        let generic_ctx = RlweContext::builder(set)
            .reducer_preference(ReducerPreference::Generic)
            .build()
            .expect("named set");
        bench_scheme(
            &mut snap,
            &generic_ctx,
            &format!("{label}_generic"),
            scheme_reps,
        );
        // Ablation arms: the AVX2-backend context (headline encrypt
        // through the vector transforms), then the per-key precompute
        // and the interleaved group path on top of it.
        let avx2_ctx = RlweContext::builder(set)
            .ntt_backend(NttBackend::Avx2)
            .build()
            .expect("named set");
        bench_scheme(&mut snap, &avx2_ctx, &format!("{label}_avx2"), scheme_reps);
        bench_scheme_prepared(&mut snap, &avx2_ctx, label, scheme_reps);
    }

    for e in snap.entries() {
        println!("{:<34}{:>14.1}{:>16.0}", e.name, e.ns_per_op, e.ops_per_sec);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, snap.to_json()).expect("write snapshot");
        println!("\nwrote {path}");
    }
}

//! Machine-readable performance snapshot of the suite's hot paths.
//!
//! Measures the NTT (forward/inverse), full negacyclic multiplication and
//! the scheme's encrypt/decrypt throughput on this host, and — with
//! `--json` — writes the numbers as a `BENCH_<PR>.json` snapshot so the
//! repository accumulates a benchmark trajectory across PRs.
//!
//! ```text
//! cargo run --release -p rlwe-bench --bin perf_snapshot            # print only
//! cargo run --release -p rlwe-bench --bin perf_snapshot -- --json  # + BENCH_4.json
//! cargo run --release -p rlwe-bench --bin perf_snapshot -- --smoke # CI: few reps
//! ```
//!
//! `--json [PATH]` defaults to `BENCH_4.json` in the working directory;
//! `--smoke` cuts repetition counts ~100× so CI can exercise the binary in
//! seconds (the numbers are then smoke-quality — trend data comes from
//! full runs).

use std::time::Instant;

use rlwe_bench::snapshot::{Snapshot, SnapshotEntry};

/// The PR this snapshot belongs to — bump once per PR; it names the
/// default `--json` output file and is recorded inside the document.
const PR: u32 = 4;
use rlwe_core::drbg::HashDrbg;
use rlwe_core::{ParamSet, RlweContext};
use rlwe_ntt::NttPlan;

/// Times `f` over `reps` repetitions (after one warm-up call) and returns
/// nanoseconds per call.
fn time_ns<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn demo(n: usize, q: u32, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(seed) + 1) % q)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| format!("BENCH_{PR}.json"))
    });

    let (ntt_reps, scheme_reps): (u32, u32) = if smoke { (50, 5) } else { (20_000, 500) };
    let mut snap = Snapshot::new(PR, smoke);

    println!(
        "PERF SNAPSHOT ({} mode, ns/op and ops/s, this host)\n",
        if smoke { "smoke" } else { "full" }
    );
    println!("{:<28}{:>14}{:>16}", "benchmark", "ns/op", "ops/s");

    // --- NTT layer --------------------------------------------------------
    for (label, n, q) in [("p1", 256usize, 7681u32), ("p2", 512, 12289)] {
        let plan = NttPlan::new(n, q).expect("paper ring");
        let poly = demo(n, q, 31);
        let other = demo(n, q, 77);

        let mut buf = poly.clone();
        let fwd = time_ns(
            || {
                buf.copy_from_slice(&poly);
                plan.forward(std::hint::black_box(&mut buf));
            },
            ntt_reps,
        );
        snap.push(SnapshotEntry::ns(format!("ntt_forward_{label}_n{n}"), fwd));

        let hat = plan.forward_copy(&poly);
        let inv = time_ns(
            || {
                buf.copy_from_slice(&hat);
                plan.inverse(std::hint::black_box(&mut buf));
            },
            ntt_reps,
        );
        snap.push(SnapshotEntry::ns(format!("ntt_inverse_{label}_n{n}"), inv));

        let mut out = vec![0u32; n];
        let mut scratch = rlwe_ntt::PolyScratch::new(n);
        let mul = time_ns(
            || {
                plan.negacyclic_mul_into(
                    std::hint::black_box(&poly),
                    std::hint::black_box(&other),
                    &mut out,
                    &mut scratch,
                )
                .expect("lengths match");
            },
            ntt_reps / 2,
        );
        snap.push(SnapshotEntry::ns(
            format!("negacyclic_mul_{label}_n{n}"),
            mul,
        ));
    }

    // --- Scheme layer -----------------------------------------------------
    for set in [ParamSet::P1, ParamSet::P2] {
        let label = match set {
            ParamSet::P1 => "p1",
            ParamSet::P2 => "p2",
        };
        let ctx = RlweContext::new(set).expect("named set");
        let mut rng = HashDrbg::new([7u8; 32]);
        let (pk, sk) = ctx.generate_keypair(&mut rng).expect("keygen");
        let msg = vec![0xA5u8; ctx.params().message_bytes()];
        let mut scratch = ctx.new_scratch();
        let mut ct = ctx.empty_ciphertext();
        ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
            .expect("encrypt");

        let enc = time_ns(
            || {
                ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
                    .expect("encrypt");
            },
            scheme_reps,
        );
        snap.push(SnapshotEntry::ns(format!("encrypt_{label}"), enc));

        let mut pt = vec![0u8; ctx.params().message_bytes()];
        let dec = time_ns(
            || {
                ctx.decrypt_into(&sk, &ct, &mut pt, &mut scratch)
                    .expect("decrypt");
            },
            scheme_reps,
        );
        snap.push(SnapshotEntry::ns(format!("decrypt_{label}"), dec));
    }

    for e in snap.entries() {
        println!("{:<28}{:>14.1}{:>16.0}", e.name, e.ns_per_op, e.ops_per_sec);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, snap.to_json()).expect("write snapshot");
        println!("\nwrote {path}");
    }
}

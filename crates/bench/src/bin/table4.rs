//! Regenerates **Table IV** — comparison of ring-LWE encryption schemes,
//! plus the ECIES/ECC estimate of §IV-B.
//!
//! ```text
//! cargo run -p rlwe-bench --bin table4
//! ```

use rlwe_bench::literature::{ECC_POINT_MUL_M0PLUS, TABLE4, TABLE4_PAPER_RESULTS};
use rlwe_bench::{fmt_row, group_digits};
use rlwe_core::ParamSet;
use rlwe_ecc::estimate::{nominal_ladder_counts, CycleEstimator};
use rlwe_m4sim::report;

fn main() {
    println!("TABLE IV: COMPARISON OF RING-LWE ENCRYPTION SCHEMES");
    println!("(cycles; * = this reproduction)\n");
    println!(
        "{:<34}{:<18}{:>12}  params",
        "Operation", "Platform", "Cycles"
    );
    println!("{}", "-".repeat(76));
    for r in TABLE4 {
        println!(
            "{} {}",
            fmt_row(r.operation, r.platform, r.cycles, r.params, false),
            r.source
        );
    }
    println!("{}", "-".repeat(76));
    println!("paper's own measurements:");
    for r in TABLE4_PAPER_RESULTS {
        println!(
            "{} (paper)",
            fmt_row(r.operation, r.platform, r.cycles, r.params, false)
        );
    }
    println!("{}", "-".repeat(76));
    println!("this reproduction (cost model):");
    for set in [ParamSet::P1, ParamSet::P2] {
        let label = if set == ParamSet::P1 { "P1" } else { "P2" };
        for row in report::table2(set) {
            println!(
                "{}",
                fmt_row(
                    &row.cycles.operation,
                    "Cortex-M4F model",
                    row.cycles.model_cycles,
                    label,
                    true
                )
            );
        }
    }

    // §IV-B: the ECIES comparison — regenerated from our own K-233
    // implementation's operation counts, calibrated to the paper's [19].
    println!("{}", "-".repeat(76));
    println!("ECC baseline (from our K-233 Montgomery ladder + DAC-2014 calibration):");
    let est = CycleEstimator::m0plus();
    let pm = est.point_mul_cycles(&nominal_ladder_counts());
    println!(
        "{} {}",
        fmt_row(
            ECC_POINT_MUL_M0PLUS.operation,
            ECC_POINT_MUL_M0PLUS.platform,
            pm as f64,
            "K-233",
            true
        ),
        ECC_POINT_MUL_M0PLUS.source
    );
    println!(
        "{}",
        fmt_row(
            "ECIES encryption (2 point muls)",
            "Cortex-M0+ est.",
            est.ecies_encrypt_cycles() as f64,
            "K-233",
            true
        )
    );
    let our_enc = report::table2(ParamSet::P1)[1].cycles.model_cycles;
    println!(
        "\nDerived claim: ECIES / ring-LWE encryption = {} / {} = {:.1}x",
        group_digits(est.ecies_encrypt_cycles()),
        group_digits(our_enc as u64),
        est.ecies_encrypt_cycles() as f64 / our_enc
    );
    println!("(paper: \"faster than ECIES by more than one order of magnitude\")");
}

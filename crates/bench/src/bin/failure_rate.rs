//! Decryption-failure experiment (beyond the paper): the P1/P2 parameter
//! sets have a small but measurable per-message failure probability that
//! the paper never discusses — the noise term `e₁r₁ + e₂r₂ + e₃` has
//! per-coefficient std ≈ σ²√(2n), only ~4.2σ below the q/4 threshold.
//!
//! ```text
//! cargo run --release -p rlwe-bench --bin failure_rate [trials]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlwe_core::{ParamSet, RlweContext};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("DECRYPTION FAILURE RATE ({trials} encryptions per parameter set)\n");
    for set in [ParamSet::P1, ParamSet::P2] {
        let ctx = RlweContext::new(set).expect("paper parameter sets are valid");
        let mut rng = StdRng::seed_from_u64(0xFA11);
        let (pk, sk) = ctx.generate_keypair(&mut rng).expect("keygen");
        let msg = vec![0xA5u8; ctx.params().message_bytes()];
        let q = ctx.params().q();
        let mut failures = 0usize;
        let mut worst_noise = 0u32;
        let mut noise_sum = 0f64;
        for _ in 0..trials {
            let ct = ctx.encrypt(&pk, &msg, &mut rng).expect("encrypt");
            let d = ctx.diagnostics(&sk, &ct).expect("diagnostics");
            if d.failed {
                failures += 1;
            }
            worst_noise = worst_noise.max(d.max_noise);
            noise_sum += d.mean_noise;
        }
        let sigma = ctx.params().spec().sigma();
        let n = ctx.params().n() as f64;
        let predicted_std = sigma * sigma * (2.0 * n).sqrt();
        println!("{set}:");
        println!("  threshold q/4 = {}", q / 4);
        println!(
            "  noise: mean {:.0}, worst max {} (predicted per-coeff std {:.0})",
            noise_sum / trials as f64,
            worst_noise,
            predicted_std
        );
        println!(
            "  failures: {failures}/{trials} = {:.2}% of messages\n",
            failures as f64 / trials as f64 * 100.0
        );
    }
    println!("note: a failed message has >= 1 flipped bit; applications need");
    println!("an outer code or retry. Later schemes (NewHope, Kyber) chose");
    println!("parameters with cryptographically negligible failure rates.");
}

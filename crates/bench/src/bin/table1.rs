//! Regenerates **Table I** — measured results of major operations.
//!
//! ```text
//! cargo run -p rlwe-bench --bin table1
//! ```

use rlwe_core::ParamSet;
use rlwe_m4sim::report;

fn main() {
    println!("TABLE I: MEASURED RESULTS OF MAJOR OPERATIONS");
    println!("(cycles; 'paper' = DWT_CYCCNT on the STM32F407, 'model' = M4F cost model)\n");
    println!("{}", report::table1_header());
    println!("{}", "-".repeat(78));
    for set in [ParamSet::P1, ParamSet::P2] {
        print!("{}", report::render_table1(set));
        println!();
    }
    // The derived claims of §IV-A.
    let p1 = report::table1(ParamSet::P1);
    let ntt = p1[0].model_cycles;
    let par = p1[1].model_cycles;
    let ky = p1[3].model_cycles;
    println!("Derived claims (P1, model):");
    println!(
        "  parallel NTT vs 3 sequential: {:.1}% faster (paper: 8.3%)",
        (1.0 - par / (3.0 * ntt)) * 100.0
    );
    println!(
        "  Knuth-Yao sampling: {:.1} cycles/sample average (paper: 28.5)",
        ky / 256.0
    );
    println!("\nP1 = (256, 7681, 11.31/sqrt(2pi)), P2 = (512, 12289, 12.18/sqrt(2pi))");
}

//! Regenerates **Fig. 1** — the partial contents of the probability
//! matrix, with the non-stored all-zero storage words identified.
//!
//! ```text
//! cargo run -p rlwe-bench --bin fig1
//! ```

use rlwe_sampler::ProbabilityMatrix;

fn main() {
    let pmat = ProbabilityMatrix::paper_p1().expect("paper P1 matrix");
    println!("FIG. 1: PARTIAL CONTENTS OF THE PROBABILITY MATRIX (sigma = 11.31/sqrt(2pi))");
    println!(
        "rows = {}, cols = {}, total bits = {} (paper: 55 x 109 = 5 995)\n",
        pmat.rows(),
        pmat.cols(),
        pmat.total_bits()
    );
    // The paper's figure shows the top-left corner, one column of the
    // figure per matrix column.
    let show_rows = 11;
    let show_cols = 16;
    println!("top-left corner (row 0 at the top, columns = DDG levels):");
    print!("{}", pmat.corner_display(show_rows, show_cols));

    // The zero-word trimming the figure annotates (the blue box): the
    // all-zero high-row words of the early columns.
    println!("\nzero-word trimming (high-row storage words per column):");
    let wpc = pmat.words_per_col();
    let mut skipped_total = 0usize;
    for c in 0..pmat.cols() {
        skipped_total += pmat.column_skipped_words(c);
    }
    println!("  words per column (untrimmed): {wpc}");
    println!(
        "  untrimmed total: {} words (paper: 218)",
        pmat.untrimmed_words()
    );
    println!("  all-zero words dropped: {skipped_total}");
    println!("  stored total: {} words (paper: 180)", pmat.stored_words());
    // Where the trimming happens: the bottom-left corner of the figure.
    let first_untrimmed = (0..pmat.cols())
        .find(|&c| pmat.column_skipped_words(c) == 0)
        .unwrap_or(pmat.cols());
    println!(
        "  columns 0..{first_untrimmed} store fewer than {wpc} words \
         (the figure's highlighted region)"
    );
}

//! Crossover study: where does the NTT overtake schoolbook and Karatsuba
//! multiplication on this host? Context for the paper's §II-C claim that
//! the FFT/NTT "is considered the fastest algorithm" for large polynomial
//! multiplication.
//!
//! ```text
//! cargo run --release -p rlwe-bench --bin crossover
//! ```

use std::time::Instant;

use rlwe_ntt::{karatsuba, schoolbook, NttPlan};

fn time_us<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    // Warm up once, then average.
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn demo(n: usize, q: u32, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(seed) + 1) % q)
        .collect()
}

fn main() {
    // 12289 = 1 + 3*2^12 supports every power of two up to 2048.
    let q = 12289u32;
    println!("NEGACYCLIC MULTIPLICATION CROSSOVER (q = {q}, this host, microseconds)\n");
    println!(
        "{:>6}{:>14}{:>14}{:>14}   winner",
        "n", "schoolbook", "karatsuba", "NTT"
    );
    for log_n in 3..=11 {
        let n = 1usize << log_n;
        let a = demo(n, q, 31);
        let b = demo(n, q, 77);
        let plan = NttPlan::new(n, q).expect("NTT-friendly");
        let reps = if n <= 128 { 200 } else { 20 };
        let t_school = time_us(
            || {
                schoolbook::negacyclic_mul(&a, &b, q);
            },
            reps,
        );
        let t_kara = time_us(
            || {
                karatsuba::negacyclic_mul(&a, &b, q);
            },
            reps,
        );
        let t_ntt = time_us(
            || {
                plan.negacyclic_mul(&a, &b);
            },
            reps,
        );
        let winner = if t_ntt <= t_kara && t_ntt <= t_school {
            "NTT"
        } else if t_kara <= t_school {
            "karatsuba"
        } else {
            "schoolbook"
        };
        println!("{n:>6}{t_school:>14.1}{t_kara:>14.1}{t_ntt:>14.1}   {winner}");
    }
    println!("\nAt the paper's n = 256/512 the NTT must already dominate — the");
    println!("premise of building the whole scheme around it.");
}

//! Regenerates **Table II** — full-scheme cycles, flash and RAM.
//!
//! ```text
//! cargo run -p rlwe-bench --bin table2
//! ```

use rlwe_core::ParamSet;
use rlwe_m4sim::report;

fn main() {
    println!("TABLE II: RING-LWE ENCRYPTION SCHEME — CYCLES, FLASH, RAM");
    println!("(RAM model reproduces the paper exactly; flash code size is an estimate,");
    println!(" table bytes are computed from our actual structures)\n");
    println!("{}", report::table2_header());
    println!("{}", "-".repeat(116));
    for set in [ParamSet::P1, ParamSet::P2] {
        print!("{}", report::render_table2(set));
        let ctx = rlwe_core::RlweContext::new(set).unwrap();
        println!(
            "  (+ {} B of constant tables in flash: twiddles, P_mat, DDG LUTs)\n",
            rlwe_m4sim::footprint::table_flash_bytes(&ctx)
        );
    }
    println!("P1 = (256, 7681, 11.31/sqrt(2pi)), P2 = (512, 12289, 12.18/sqrt(2pi))");
}

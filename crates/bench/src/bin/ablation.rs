//! Ablation study: costs each §III optimisation in isolation on the
//! Cortex-M4F model — the quantitative story behind the paper's design
//! choices (DESIGN.md §6).
//!
//! ```text
//! cargo run -p rlwe-bench --bin ablation
//! ```

use rlwe_bench::group_digits;
use rlwe_core::{ParamSet, RlweContext};
use rlwe_m4sim::{kernels, CostModel, Machine};

fn main() {
    let ctx = RlweContext::new(ParamSet::P1).expect("P1 is valid");
    let plan = ctx.plan();
    let ky = ctx.sampler();

    println!("ABLATION (P1, Cortex-M4F cost model)\n");

    // ----- NTT memory layout (§III-C vs §III-D) -----------------------
    println!("NTT forward transform, n = 256:");
    let poly: Vec<u32> = (0..256u32).map(|i| (i * 13 + 2) % 7681).collect();
    let mut mh = Machine::cortex_m4f(1);
    let mut a = poly.clone();
    kernels::ntt_forward_halfword(&mut mh, plan, &mut a);
    let mut mp = Machine::cortex_m4f(1);
    let mut b = poly.clone();
    kernels::ntt_forward_packed(&mut mp, plan, &mut b);
    println!(
        "  halfword accesses, no unroll (Alg. 3): {:>8} cycles",
        group_digits(mh.cycles())
    );
    println!(
        "  packed words, 2x unrolled     (Alg. 4): {:>8} cycles  ({:.0}% saved)",
        group_digits(mp.cycles()),
        (1.0 - mp.cycles() as f64 / mh.cycles() as f64) * 100.0
    );

    // Parallel NTT (§III-D).
    let mut m3 = Machine::cortex_m4f(1);
    let mut x = poly.clone();
    let mut y = poly.clone();
    let mut z = poly.clone();
    kernels::ntt_forward3_packed(&mut m3, plan, [&mut x, &mut y, &mut z]);
    println!(
        "  3 sequential packed NTTs:               {:>8} cycles",
        group_digits(3 * mp.cycles())
    );
    println!(
        "  fused parallel triple NTT:              {:>8} cycles  ({:.1}% saved; paper: 8.3%)",
        group_digits(m3.cycles()),
        (1.0 - m3.cycles() as f64 / (3 * mp.cycles()) as f64) * 100.0
    );

    // ----- Knuth-Yao ladder (§III-B) -----------------------------------
    println!("\nKnuth-Yao sampling, cycles/sample (ideal TRNG, 65 536 samples):");
    let n = 65_536;
    let model = CostModel::cortex_m4f_ideal_trng();
    let run = |label: &str, f: &dyn Fn(&mut Machine)| {
        let mut m = Machine::with_model(model, 3);
        f(&mut m);
        println!("  {label:<44} {:>8.1}", m.cycles() as f64 / n as f64);
    };
    run("Alg. 1: per-bit row scan (§III-B1)", &|m| {
        kernels::ky_sample_poly_basic(m, ky, n, 7681);
    });
    run("+ Hamming-weight column skip (prior art)", &|m| {
        kernels::ky_sample_poly_hw(m, ky, n, 7681);
    });
    run("+ trimmed words + clz skip (§III-B4)", &|m| {
        kernels::ky_sample_poly_clz(m, ky, n, 7681);
    });
    run("+ LUT1 + LUT2 (Alg. 2, §III-B5; paper: 28.5)", &|m| {
        kernels::ky_sample_poly(m, ky, n, 7681);
    });

    // ----- TRNG management (§III-E) ------------------------------------
    println!("\nTRNG bit management (3n-sample encryption burst):");
    let mut ideal = Machine::with_model(model, 4);
    kernels::ky_sample_poly(&mut ideal, ky, 768, 7681);
    let mut real = Machine::cortex_m4f(4);
    kernels::ky_sample_poly(&mut real, ky, 768, 7681);
    println!(
        "  ideal TRNG (never stalls):   {:>8} cycles",
        group_digits(ideal.cycles())
    );
    println!(
        "  140-cycle word period:       {:>8} cycles  ({} stall cycles, {} words)",
        group_digits(real.cycles()),
        group_digits(real.trng_stall_cycles()),
        real.trng_words()
    );
}

//! Regenerates **Fig. 2** — accumulated probability that the Knuth-Yao
//! walk finds a terminal node within the first x DDG levels.
//!
//! ```text
//! cargo run -p rlwe-bench --bin fig2
//! ```

use rlwe_sampler::{ddg, ProbabilityMatrix};

fn main() {
    let pmat = ProbabilityMatrix::paper_p1().expect("paper P1 matrix");
    let cdf = ddg::level_cdf(&pmat);
    println!("FIG. 2: ACCUMULATED SAMPLING PROBABILITY PER DDG LEVEL");
    println!("(sigma = 11.31/sqrt(2pi); the paper plots levels 3..13)\n");
    println!("level   P(terminal within level)   bar");
    for level in 3..=13 {
        let p = cdf[level - 1];
        let bar_len = ((p - 0.7).max(0.0) / 0.3 * 50.0).round() as usize;
        println!("{level:>5}   {p:>24.6}   {}", "#".repeat(bar_len));
    }
    println!("\nanchor points:");
    println!(
        "  level  8: {:.4} (paper: 0.9727 — the LUT1 hit rate)",
        cdf[7]
    );
    println!(
        "  level 13: {:.4} (paper: 0.9987 — the LUT1+LUT2 hit rate)",
        cdf[12]
    );
    println!(
        "\nexpected levels per sample: {:.3} (entropy: {:.3} bits; Knuth-Yao \
         consumes within 2 bits of the entropy)",
        ddg::expected_levels(&pmat),
        ddg::entropy_bits(&pmat)
    );
}

//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! One binary per exhibit (run with `cargo run -p rlwe-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — major-operation cycle counts (M4F cost model) |
//! | `table2` | Table II — full scheme cycles + flash + RAM |
//! | `table3` | Table III — building-block comparison incl. literature rows |
//! | `table4` | Table IV — scheme comparison incl. the ECIES estimate |
//! | `fig1` | Fig. 1 — probability-matrix corner and zero-word trimming |
//! | `fig2` | Fig. 2 — DDG-level cumulative termination probability |
//!
//! Criterion wall-clock benches of every building block live under
//! `benches/` (`cargo bench --workspace`). Those measure *this host*, not
//! the Cortex-M4F; the M4F numbers come from the cost-model binaries.

#![forbid(unsafe_code)]

pub mod literature;
pub mod snapshot;

/// Formats one comparison line with a fixed-width layout shared by the
/// table binaries.
pub fn fmt_row(label: &str, platform: &str, cycles: f64, params: &str, ours: bool) -> String {
    let marker = if ours { " *" } else { "  " };
    format!(
        "{label:<34}{platform:<18}{:>12}  {params}{marker}",
        group_digits(cycles.round() as u64)
    )
}

/// Renders `1234567` as `1 234 567`, the paper's digit grouping
/// (re-exported from the shared formatter in `rlwe-obs`).
pub use rlwe_obs::group_digits;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1 000");
        assert_eq!(group_digits(121166), "121 166");
        assert_eq!(group_digits(2761640), "2 761 640");
    }

    #[test]
    fn row_marker_distinguishes_our_results() {
        assert!(fmt_row("x", "y", 1.0, "P1", true).ends_with('*'));
        assert!(!fmt_row("x", "y", 1.0, "P1", false).ends_with('*'));
    }
}

//! Literature rows of Tables III and IV — the published numbers the paper
//! compares against, kept verbatim (with citations) so the comparison
//! binaries can print the full tables.

/// One published result row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LitRow {
    /// Operation name as printed in the paper.
    pub operation: &'static str,
    /// Platform.
    pub platform: &'static str,
    /// Reported cycles (averaged where the paper averaged).
    pub cycles: f64,
    /// Parameter-set label (P1..P5 as defined under Table III).
    pub params: &'static str,
    /// Citation tag from the paper's bibliography.
    pub source: &'static str,
}

/// Table III literature rows (building blocks).
pub const TABLE3: &[LitRow] = &[
    LitRow {
        operation: "NTT transform",
        platform: "Core i5-3210M",
        cycles: 4_480.0,
        params: "P5",
        source: "[17]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "Core i3-2310",
        cycles: 4_484.0,
        params: "P5",
        source: "[17]",
    },
    LitRow {
        operation: "NTT multiplication",
        platform: "Core i5-3210M",
        cycles: 16_052.0,
        params: "P5",
        source: "[17]",
    },
    LitRow {
        operation: "NTT multiplication",
        platform: "Core i3-2310",
        cycles: 16_096.0,
        params: "P5",
        source: "[17]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "ATxmega64A3",
        cycles: 2_720_000.0,
        params: "P3",
        source: "[11]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "Cortex-M4F",
        cycles: 122_619.0,
        params: "P3",
        source: "[10]",
    },
    LitRow {
        operation: "NTT multiplication",
        platform: "Cortex-M4F",
        cycles: 508_624.0,
        params: "P3",
        source: "[10]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "ARM7TDMI",
        cycles: 260_521.0,
        params: "P3",
        source: "[12]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "ATMega64",
        cycles: 2_207_787.0,
        params: "P3",
        source: "[12]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "ARM7TDMI",
        cycles: 109_306.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "ATMega64",
        cycles: 754_668.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "NTT transform",
        platform: "ATxmega64A3",
        cycles: 1_216_000.0,
        params: "P1",
        source: "[11]",
    },
    LitRow {
        operation: "NTT multiplication",
        platform: "Core i5 4570R",
        cycles: 342_800.0,
        params: "P4",
        source: "[9]",
    },
    LitRow {
        operation: "Gaussian sampling",
        platform: "ARM7TDMI",
        cycles: 218.6,
        params: "P3",
        source: "[12]",
    },
    LitRow {
        operation: "Gaussian sampling",
        platform: "ATmega64",
        cycles: 1_206.3,
        params: "P3",
        source: "[12]",
    },
    LitRow {
        operation: "Gaussian sampling",
        platform: "Core i5 4570R",
        cycles: 652.3,
        params: "P4",
        source: "[9]",
    },
    LitRow {
        operation: "Gaussian sampling",
        platform: "Cortex-M4F",
        cycles: 1_828.0,
        params: "P3",
        source: "[10]",
    },
];

/// The paper's own Table III rows (for printing "paper measured" next to
/// "our model").
pub const TABLE3_PAPER_RESULTS: &[LitRow] = &[
    LitRow {
        operation: "NTT transform",
        platform: "Cortex-M4F",
        cycles: 71_090.0,
        params: "P2",
        source: "this work",
    },
    LitRow {
        operation: "NTT multiplication",
        platform: "Cortex-M4F",
        cycles: 237_803.0,
        params: "P2",
        source: "this work",
    },
    LitRow {
        operation: "NTT transform",
        platform: "Cortex-M4F",
        cycles: 31_583.0,
        params: "P1",
        source: "this work",
    },
    LitRow {
        operation: "NTT multiplication",
        platform: "Cortex-M4F",
        cycles: 108_147.0,
        params: "P1",
        source: "this work",
    },
    LitRow {
        operation: "Gaussian sampling",
        platform: "Cortex-M4F",
        cycles: 28.5,
        params: "P1/P2",
        source: "this work",
    },
];

/// Table IV literature rows (full encryption schemes).
pub const TABLE4: &[LitRow] = &[
    LitRow {
        operation: "Key generation",
        platform: "ARM7TDMI",
        cycles: 575_047.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "Encryption",
        platform: "ARM7TDMI",
        cycles: 878_454.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "Decryption",
        platform: "ARM7TDMI",
        cycles: 226_235.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "Key generation",
        platform: "ATMega64",
        cycles: 2_770_592.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "Encryption",
        platform: "ATMega64",
        cycles: 3_042_675.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "Decryption",
        platform: "ATMega64",
        cycles: 1_368_969.0,
        params: "P1",
        source: "[12]",
    },
    LitRow {
        operation: "Encryption",
        platform: "ATxmega64A3",
        cycles: 5_024_000.0,
        params: "P1",
        source: "[11]",
    },
    LitRow {
        operation: "Decryption",
        platform: "ATxmega64A3",
        cycles: 2_464_000.0,
        params: "P1",
        source: "[11]",
    },
    LitRow {
        operation: "Key generation",
        platform: "Core 2 Duo",
        cycles: 9_300_000.0,
        params: "P1",
        source: "[3]",
    },
    LitRow {
        operation: "Encryption",
        platform: "Core 2 Duo",
        cycles: 4_560_000.0,
        params: "P1",
        source: "[3]",
    },
    LitRow {
        operation: "Decryption",
        platform: "Core 2 Duo",
        cycles: 1_710_000.0,
        params: "P1",
        source: "[3]",
    },
    LitRow {
        operation: "Key generation",
        platform: "Core 2 Duo",
        cycles: 13_590_000.0,
        params: "P2",
        source: "[3]",
    },
    LitRow {
        operation: "Encryption",
        platform: "Core 2 Duo",
        cycles: 9_180_000.0,
        params: "P2",
        source: "[3]",
    },
    LitRow {
        operation: "Decryption",
        platform: "Core 2 Duo",
        cycles: 3_540_000.0,
        params: "P2",
        source: "[3]",
    },
];

/// The paper's own Table IV rows.
pub const TABLE4_PAPER_RESULTS: &[LitRow] = &[
    LitRow {
        operation: "Key generation",
        platform: "Cortex-M4F",
        cycles: 117_009.0,
        params: "P1",
        source: "this work",
    },
    LitRow {
        operation: "Encryption",
        platform: "Cortex-M4F",
        cycles: 121_166.0,
        params: "P1",
        source: "this work",
    },
    LitRow {
        operation: "Decryption",
        platform: "Cortex-M4F",
        cycles: 43_324.0,
        params: "P1",
        source: "this work",
    },
    LitRow {
        operation: "Key generation",
        platform: "Cortex-M4F",
        cycles: 252_002.0,
        params: "P2",
        source: "this work",
    },
    LitRow {
        operation: "Encryption",
        platform: "Cortex-M4F",
        cycles: 261_939.0,
        params: "P2",
        source: "this work",
    },
    LitRow {
        operation: "Decryption",
        platform: "Cortex-M4F",
        cycles: 96_520.0,
        params: "P2",
        source: "this work",
    },
];

/// The 233-bit ECC reference the ECIES estimate builds on (the paper's
/// \[19\]: Cortex-M0+ point multiplication).
pub const ECC_POINT_MUL_M0PLUS: LitRow = LitRow {
    operation: "233-bit point multiplication",
    platform: "Cortex-M0+",
    cycles: 2_761_640.0,
    params: "K-233",
    source: "[19]",
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_claims_hold_in_the_literature_data() {
        // "Our implementation beats all known software implementations of
        // ring-LWE encryption by a factor of at least 7" — check against
        // the fastest competing encryption (ARM7TDMI, 878 454).
        let our_enc = 121_166.0;
        let best_other = TABLE4
            .iter()
            .filter(|r| r.operation == "Encryption" && r.params == "P1")
            .map(|r| r.cycles)
            .fold(f64::INFINITY, f64::min);
        assert!(best_other / our_enc >= 7.0);
    }

    #[test]
    fn gaussian_sampler_speedup_is_at_least_7_6() {
        let best_other = TABLE3
            .iter()
            .filter(|r| r.operation == "Gaussian sampling")
            .map(|r| r.cycles)
            .fold(f64::INFINITY, f64::min);
        assert!((best_other / 28.5) >= 7.6);
    }

    #[test]
    fn ecies_is_an_order_of_magnitude_slower() {
        let ecies = 2.0 * ECC_POINT_MUL_M0PLUS.cycles;
        assert!(ecies / 121_166.0 > 10.0);
    }
}

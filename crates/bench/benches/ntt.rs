//! Wall-clock benches of the NTT engine (host CPU): the paper's
//! optimisation ladder — scalar vs packed vs parallel — plus the
//! schoolbook baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlwe_ntt::packed::{forward_packed, pack_coeffs};
use rlwe_ntt::parallel::{forward3, forward3_packed};
use rlwe_ntt::{schoolbook, NttPlan};
use std::hint::black_box;

fn demo_poly(n: usize, q: u32, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| (i.wrapping_mul(seed) + 1) % q)
        .collect()
}

fn bench_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt_forward");
    for (n, q) in [(256usize, 7681u32), (512, 12289)] {
        let plan = NttPlan::new(n, q).unwrap();
        let poly = demo_poly(n, q, 31);
        g.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                let mut a = poly.clone();
                plan.forward(black_box(&mut a));
                a
            })
        });
        let packed = pack_coeffs(&poly);
        g.bench_with_input(BenchmarkId::new("packed", n), &n, |b, _| {
            b.iter(|| {
                let mut a = packed.clone();
                forward_packed(&plan, black_box(&mut a));
                a
            })
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt_parallel3");
    for (n, q) in [(256usize, 7681u32), (512, 12289)] {
        let plan = NttPlan::new(n, q).unwrap();
        let pa = demo_poly(n, q, 3);
        let pb = demo_poly(n, q, 5);
        let pc = demo_poly(n, q, 7);
        g.bench_with_input(BenchmarkId::new("three_sequential", n), &n, |b, _| {
            b.iter(|| {
                let mut a = pa.clone();
                let mut bb = pb.clone();
                let mut cc = pc.clone();
                plan.forward(&mut a);
                plan.forward(&mut bb);
                plan.forward(&mut cc);
                (a, bb, cc)
            })
        });
        g.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| {
                let mut a = pa.clone();
                let mut bb = pb.clone();
                let mut cc = pc.clone();
                forward3(&plan, [&mut a, &mut bb, &mut cc]);
                (a, bb, cc)
            })
        });
        let wa = pack_coeffs(&pa);
        let wb = pack_coeffs(&pb);
        let wc = pack_coeffs(&pc);
        g.bench_with_input(BenchmarkId::new("fused_packed", n), &n, |b, _| {
            b.iter(|| {
                let mut a = wa.clone();
                let mut bb = wb.clone();
                let mut cc = wc.clone();
                forward3_packed(&plan, [&mut a, &mut bb, &mut cc]);
                (a, bb, cc)
            })
        });
    }
    g.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let mut g = c.benchmark_group("negacyclic_multiply");
    for (n, q) in [(256usize, 7681u32), (512, 12289)] {
        let plan = NttPlan::new(n, q).unwrap();
        let a = demo_poly(n, q, 13);
        let b = demo_poly(n, q, 17);
        g.bench_with_input(BenchmarkId::new("ntt", n), &n, |bench, _| {
            bench.iter(|| plan.negacyclic_mul(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("schoolbook", n), &n, |bench, _| {
            bench.iter(|| schoolbook::negacyclic_mul(black_box(&a), black_box(&b), q))
        });
    }
    g.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt_inverse");
    for (n, q) in [(256usize, 7681u32), (512, 12289)] {
        let plan = NttPlan::new(n, q).unwrap();
        let poly = demo_poly(n, q, 9);
        g.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                let mut a = poly.clone();
                plan.inverse(black_box(&mut a));
                a
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_parallel,
    bench_multiply,
    bench_inverse
);
criterion_main!(benches);

//! Wall-clock benches of the full scheme (host CPU) — the Table II
//! operations at both security levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlwe_core::{ParamSet, RlweContext};
use std::hint::black_box;

fn bench_scheme(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme");
    for set in [ParamSet::P1, ParamSet::P2] {
        let label = if set == ParamSet::P1 { "P1" } else { "P2" };
        let ctx = RlweContext::new(set).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, sk) = ctx.generate_keypair(&mut rng).unwrap();
        let msg = vec![0x5Au8; ctx.params().message_bytes()];
        let ct = ctx.encrypt(&pk, &msg, &mut rng).unwrap();

        g.bench_with_input(BenchmarkId::new("keygen", label), &set, |b, _| {
            b.iter(|| black_box(ctx.generate_keypair(&mut rng).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("encrypt", label), &set, |b, _| {
            b.iter(|| black_box(ctx.encrypt(&pk, &msg, &mut rng).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("decrypt", label), &set, |b, _| {
            b.iter(|| black_box(ctx.decrypt(&sk, &ct).unwrap()))
        });
    }
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let ctx = RlweContext::new(ParamSet::P1).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let (pk, _) = ctx.generate_keypair(&mut rng).unwrap();
    let msg = vec![1u8; 32];
    let ct = ctx.encrypt(&pk, &msg, &mut rng).unwrap();
    let ct_bytes = ct.to_bytes().unwrap();
    let mut g = c.benchmark_group("serialization");
    g.bench_function("ciphertext_to_bytes", |b| {
        b.iter(|| black_box(ct.to_bytes().unwrap()))
    });
    g.bench_function("ciphertext_from_bytes", |b| {
        b.iter(|| black_box(rlwe_core::Ciphertext::from_bytes(&ct_bytes).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_scheme, bench_serialization);
criterion_main!(benches);

//! Throughput benches for the engine: sequential single-call loops vs
//! `encrypt_batch` / `encap_batch` at batch sizes 1 / 32 / 256, on both
//! parameter sets. The interesting number is the crossover — how large a
//! batch must be before the fan-out overhead pays for itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rlwe_core::drbg::HashDrbg;
use rlwe_core::{ParamSet, RlweContext};
use rlwe_engine::{default_workers, encap_batch, encrypt_batch, encrypt_batch_into};
use std::hint::black_box;

const BATCH_SIZES: [usize; 3] = [1, 32, 256];

fn label(set: ParamSet) -> &'static str {
    if set == ParamSet::P1 {
        "P1"
    } else {
        "P2"
    }
}

fn bench_encrypt_throughput(c: &mut Criterion) {
    for set in [ParamSet::P1, ParamSet::P2] {
        let ctx = RlweContext::new(set).unwrap();
        let mut rng = HashDrbg::new([1u8; 32]);
        let (pk, _) = ctx.generate_keypair(&mut rng).unwrap();
        let mb = ctx.params().message_bytes();
        let workers = default_workers();
        let master = [7u8; 32];

        let mut g = c.benchmark_group(format!("encrypt_throughput_{}", label(set)));
        for &n in &BATCH_SIZES {
            let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; mb]).collect();
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::new("single_call_loop", n), &msgs, |b, msgs| {
                b.iter(|| {
                    for (i, m) in msgs.iter().enumerate() {
                        let mut rng = HashDrbg::for_stream(&master, i as u64);
                        black_box(ctx.encrypt(&pk, m, &mut rng).unwrap());
                    }
                })
            });
            g.bench_with_input(
                BenchmarkId::new(format!("batch_{workers}w"), n),
                &msgs,
                |b, msgs| b.iter(|| black_box(encrypt_batch(&ctx, &pk, msgs, &master, workers))),
            );
            // The allocation-free path: ciphertexts land in reusable,
            // pre-warmed storage (zero per-item polynomial allocations).
            let mut out: Vec<_> = (0..n).map(|_| ctx.empty_ciphertext()).collect();
            g.bench_with_input(
                BenchmarkId::new(format!("batch_into_{workers}w"), n),
                &msgs,
                |b, msgs| {
                    b.iter(|| {
                        black_box(
                            encrypt_batch_into(&ctx, &pk, msgs, &master, workers, &mut out)
                                .unwrap(),
                        )
                    })
                },
            );
        }
        g.finish();
    }
}

fn bench_encap_throughput(c: &mut Criterion) {
    for set in [ParamSet::P1, ParamSet::P2] {
        let ctx = RlweContext::new(set).unwrap();
        let mut rng = HashDrbg::new([2u8; 32]);
        let (pk, _) = ctx.generate_keypair(&mut rng).unwrap();
        let workers = default_workers();
        let master = [9u8; 32];

        let mut g = c.benchmark_group(format!("encap_throughput_{}", label(set)));
        for &n in &BATCH_SIZES {
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::new("single_call_loop", n), &n, |b, &n| {
                b.iter(|| {
                    for i in 0..n {
                        let mut rng = HashDrbg::for_stream(&master, i as u64);
                        black_box(ctx.encapsulate(&pk, &mut rng).unwrap());
                    }
                })
            });
            g.bench_with_input(
                BenchmarkId::new(format!("batch_{workers}w"), n),
                &n,
                |b, &n| b.iter(|| black_box(encap_batch(&ctx, &pk, n, &master, workers))),
            );
        }
        g.finish();
    }
}

fn bench_context_pooling(c: &mut Criterion) {
    // The cost the pool amortises: context construction vs a pool hit.
    let mut g = c.benchmark_group("context_setup");
    g.bench_function("cold_build_P1", |b| {
        b.iter(|| black_box(RlweContext::new(ParamSet::P1).unwrap()))
    });
    let pool = rlwe_engine::ContextPool::new();
    pool.get(ParamSet::P1).unwrap();
    g.bench_function("pool_hit_P1", |b| {
        b.iter(|| black_box(pool.get(ParamSet::P1).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encrypt_throughput,
    bench_encap_throughput,
    bench_context_pooling
);
criterion_main!(benches);

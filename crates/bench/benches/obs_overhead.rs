//! Observability overhead gate: the cost of `rlwe-obs` instrumentation
//! on the hot paths, asserted — not just reported.
//!
//! Two claims from the observability design are pinned here, in the
//! function bodies (so the CI `cargo test --benches` smoke gate executes
//! them even when criterion runs each closure exactly once):
//!
//! 1. A **disabled** span costs a relaxed atomic load and a branch —
//!    budgeted at < 15 ns per enter/drop pair, measured min-of-rounds.
//! 2. Turning span tracing **on** costs < 3% on P2 encryption (four
//!    phase spans per call against ~tens of microseconds of lattice
//!    math), measured by interleaving tracing-on and tracing-off rounds
//!    and comparing the per-mode minima.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlwe_core::{ParamSet, RlweContext};
use std::hint::black_box;
use std::time::Instant;

/// Budget for one disabled `SpanId::enter()` + drop, in nanoseconds.
/// The design target is < 5 ns; the assert leaves headroom for shared
/// CI hardware while still catching any accidental work (an `Instant`
/// read, a thread-local push) on the disabled path.
const DISABLED_SPAN_BUDGET_NS: f64 = 15.0;

/// Maximum tolerated encrypt slowdown with span tracing enabled.
const MAX_ENABLED_RATIO: f64 = 1.03;

/// Min-of-rounds nanoseconds per call of `f`, amortized over `iters`.
fn min_ns_per_iter(rounds: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn bench_disabled_span(c: &mut Criterion) {
    rlwe_obs::set_tracing(false);
    let id = rlwe_obs::SpanId::register("bench.disabled");
    let ns = min_ns_per_iter(16, 100_000, || {
        let _ = black_box(id.enter());
    });
    println!("disabled span: {ns:.2} ns/enter (budget {DISABLED_SPAN_BUDGET_NS} ns)");
    assert!(
        ns < DISABLED_SPAN_BUDGET_NS,
        "disabled span costs {ns:.2} ns — over the {DISABLED_SPAN_BUDGET_NS} ns budget; \
         the no-op path is doing real work"
    );
    c.bench_function("obs/disabled_span", |b| {
        b.iter(|| {
            let _ = black_box(id.enter());
        })
    });
}

fn bench_encrypt_overhead(c: &mut Criterion) {
    // P2: the larger parameter set, where the fixed per-call span cost
    // is smallest relative to the lattice math it brackets.
    let ctx = RlweContext::new(ParamSet::P2).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let (pk, _) = ctx.generate_keypair(&mut rng).unwrap();
    let msg = vec![0x5Au8; ctx.params().message_bytes()];
    let mut ct = ctx.empty_ciphertext();
    let mut scratch = ctx.new_scratch();

    // Measure the two modes back-to-back within each round so drift
    // (thermal, cache, scheduler) hits both sides of one ratio equally,
    // then assert on the MEDIAN of the per-round ratios — robust to a
    // few noisy rounds on a shared runner, while a real regression
    // shifts every round and therefore the median.
    let rounds = 15;
    let iters = 64;
    let mut ratios = Vec::with_capacity(rounds);
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let mut ns = [0.0f64; 2];
        for (slot, enabled) in [(0usize, false), (1, true)] {
            rlwe_obs::set_tracing(enabled);
            let t0 = Instant::now();
            for _ in 0..iters {
                ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
                    .unwrap();
                black_box(&ct);
            }
            ns[slot] = t0.elapsed().as_nanos() as f64 / iters as f64;
        }
        best_off = best_off.min(ns[0]);
        best_on = best_on.min(ns[1]);
        ratios.push(ns[1] / ns[0]);
    }
    rlwe_obs::set_tracing(false);
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ratio = ratios[ratios.len() / 2];
    println!(
        "P2 encrypt: {best_off:.1} ns off, {best_on:.1} ns on — \
         median ratio {ratio:.4} (max {MAX_ENABLED_RATIO})"
    );
    assert!(
        ratio < MAX_ENABLED_RATIO,
        "span tracing costs {:.2}% on P2 encrypt — over the {:.0}% budget",
        (ratio - 1.0) * 100.0,
        (MAX_ENABLED_RATIO - 1.0) * 100.0
    );

    let mut g = c.benchmark_group("obs/encrypt_p2");
    g.bench_function("tracing_off", |b| {
        rlwe_obs::set_tracing(false);
        b.iter(|| {
            ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
                .unwrap();
            black_box(&ct);
        })
    });
    g.bench_function("tracing_on", |b| {
        rlwe_obs::set_tracing(true);
        b.iter(|| {
            ctx.encrypt_into(&pk, &msg, &mut rng, &mut ct, &mut scratch)
                .unwrap();
            black_box(&ct);
        })
    });
    rlwe_obs::set_tracing(false);
    g.finish();
}

criterion_group!(benches, bench_disabled_span, bench_encrypt_overhead);
criterion_main!(benches);

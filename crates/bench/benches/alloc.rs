//! Allocating vs `_into` scheme paths at n = 256 (P1) and n = 512 (P2).
//!
//! The `_into` entry points reuse caller-owned ciphertext/plaintext
//! storage and a per-caller `PolyScratch` arena, so the per-op delta here
//! is precisely the cost of the heap traffic the redesign removed (the
//! counting-allocator test in `rlwe-engine` pins the *count*; this bench
//! shows the wall-clock consequence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rlwe_core::drbg::HashDrbg;
use rlwe_core::{ParamSet, RlweContext};
use std::hint::black_box;

fn label(set: ParamSet) -> &'static str {
    if set == ParamSet::P1 {
        "P1_n256"
    } else {
        "P2_n512"
    }
}

fn bench_encrypt_alloc_vs_into(c: &mut Criterion) {
    for set in [ParamSet::P1, ParamSet::P2] {
        let ctx = RlweContext::new(set).unwrap();
        let mut rng = HashDrbg::new([1u8; 32]);
        let (pk, _) = ctx.generate_keypair(&mut rng).unwrap();
        let msg = vec![0xA5u8; ctx.params().message_bytes()];
        let master = [7u8; 32];

        let mut g = c.benchmark_group(format!("encrypt_alloc_{}", label(set)));
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("allocating", 1), &msg, |b, msg| {
            b.iter(|| {
                let mut rng = HashDrbg::for_stream(&master, 0);
                black_box(ctx.encrypt(&pk, msg, &mut rng).unwrap())
            })
        });
        let mut scratch = ctx.new_scratch();
        let mut ct = ctx.empty_ciphertext();
        g.bench_with_input(BenchmarkId::new("into", 1), &msg, |b, msg| {
            b.iter(|| {
                let mut rng = HashDrbg::for_stream(&master, 0);
                ctx.encrypt_into(&pk, msg, &mut rng, &mut ct, &mut scratch)
                    .unwrap();
                black_box(&ct);
            })
        });
        g.finish();
    }
}

fn bench_decrypt_alloc_vs_into(c: &mut Criterion) {
    for set in [ParamSet::P1, ParamSet::P2] {
        let ctx = RlweContext::new(set).unwrap();
        let mut rng = HashDrbg::new([2u8; 32]);
        let (pk, sk) = ctx.generate_keypair(&mut rng).unwrap();
        let msg = vec![0x3Cu8; ctx.params().message_bytes()];
        let ct = ctx.encrypt(&pk, &msg, &mut rng).unwrap();

        let mut g = c.benchmark_group(format!("decrypt_alloc_{}", label(set)));
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("allocating", 1), &ct, |b, ct| {
            b.iter(|| black_box(ctx.decrypt(&sk, ct).unwrap()))
        });
        let mut scratch = ctx.new_scratch();
        let mut out = Vec::with_capacity(ctx.params().message_bytes());
        g.bench_with_input(BenchmarkId::new("into", 1), &ct, |b, ct| {
            b.iter(|| {
                ctx.decrypt_into(&sk, ct, &mut out, &mut scratch).unwrap();
                black_box(&out);
            })
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_encrypt_alloc_vs_into,
    bench_decrypt_alloc_vs_into
);
criterion_main!(benches);

//! Ablation bench: modular-multiplication strategies inside the NTT
//! butterfly (DESIGN.md §6) — Barrett vs Montgomery vs Shoup vs naive `%`.

use criterion::{criterion_group, criterion_main, Criterion};
use rlwe_zq::montgomery::MontgomeryCtx;
use rlwe_zq::shoup::ShoupPair;
use rlwe_zq::{mul_mod, Modulus};
use std::hint::black_box;

fn bench_modmul(c: &mut Criterion) {
    let q = 7681u32;
    let modulus = Modulus::new(q).unwrap();
    let mont = MontgomeryCtx::new(q).unwrap();
    let w = 4321u32;
    let shoup = ShoupPair::new(w, q);
    let inputs: Vec<u32> = (0..1024u32).map(|i| (i * 97 + 13) % q).collect();

    let mut g = c.benchmark_group("modmul_7681_x1024");
    g.bench_function("naive_rem", |b| {
        b.iter(|| {
            inputs
                .iter()
                .fold(0u32, |acc, &a| acc ^ mul_mod(black_box(a), w, q))
        })
    });
    g.bench_function("barrett", |b| {
        b.iter(|| {
            inputs
                .iter()
                .fold(0u32, |acc, &a| acc ^ modulus.mul(black_box(a), w))
        })
    });
    g.bench_function("shoup_fixed_operand", |b| {
        b.iter(|| {
            inputs
                .iter()
                .fold(0u32, |acc, &a| acc ^ shoup.mul(black_box(a), q))
        })
    });
    let wm = mont.to_mont(w);
    let inputs_m: Vec<u32> = inputs.iter().map(|&a| mont.to_mont(a)).collect();
    g.bench_function("montgomery_in_domain", |b| {
        b.iter(|| {
            inputs_m
                .iter()
                .fold(0u32, |acc, &a| acc ^ mont.mont_mul(black_box(a), wm))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_modmul);
criterion_main!(benches);

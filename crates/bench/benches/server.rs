//! Loopback round-trip latency of the TCP serving front-end: what one
//! request costs once it crosses a real socket, kernel scheduling, and
//! the server's queue/worker pipeline — the overhead the in-process
//! engine benches (`throughput.rs`) never see.
//!
//! Arms: `ping` isolates pure transport + dispatch cost (no lattice
//! math), `sealed_exchange` is the authenticated-session hot path
//! (HMAC seal/open on both ends), and `encap` is a full KEM operation
//! behind the protocol. Under `cargo test --benches` the criterion shim
//! runs each body once, smoke-testing the whole server stack in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use rlwe_server::{serve, Client, ServerConfig};
use std::hint::black_box;

/// One server + handshaked client pair for every arm.
fn setup() -> (rlwe_server::ServerHandle, Client) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 2,
        seed: [3u8; 32],
        ..ServerConfig::default()
    };
    let handle = serve(config).expect("bench server failed to start");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.handshake(&[4u8; 32], 16).expect("handshake");
    (handle, client)
}

fn bench_server_roundtrips(c: &mut Criterion) {
    let (handle, mut client) = setup();

    c.bench_function("server/ping_roundtrip", |b| {
        b.iter(|| black_box(client.ping(b"bench").unwrap()))
    });

    let payload = [0xA5u8; 64];
    c.bench_function("server/sealed_exchange_roundtrip", |b| {
        b.iter(|| black_box(client.exchange(&payload).unwrap()))
    });

    c.bench_function("server/encap_roundtrip", |b| {
        b.iter(|| black_box(client.encap().unwrap()))
    });

    drop(client);
    handle.shutdown();
}

criterion_group!(benches, bench_server_roundtrips);
criterion_main!(benches);

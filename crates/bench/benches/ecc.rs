//! Wall-clock benches of the ECC baseline (host CPU): field arithmetic,
//! the Montgomery ladder, and ECIES — the classical side of Table IV.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlwe_ecc::curve::Point;
use rlwe_ecc::ecies::{decrypt, encrypt, EciesKeyPair};
use rlwe_ecc::gf2m::Gf2m;
use rlwe_ecc::{ladder, Scalar};
use std::hint::black_box;

fn bench_field(c: &mut Criterion) {
    let a = Gf2m::from_hex("17232BA853A7E731AF129F22FF4149563A419C26BF50A4C9D6EEFAD6126").unwrap();
    let b = Gf2m::from_hex("1DB537DECE819B7F70F555A67C427A8CD9BF18AEB9B56E0C11056FAE6A3").unwrap();
    let mut g = c.benchmark_group("gf2m_233");
    g.bench_function("mul", |bench| bench.iter(|| black_box(a.mul(&b))));
    g.bench_function("square", |bench| bench.iter(|| black_box(a.square())));
    g.bench_function("invert", |bench| bench.iter(|| black_box(a.invert())));
    g.finish();
}

fn bench_ladder(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let k = Scalar::random_below_order(&mut rng);
    let g_pt = Point::generator();
    let mut g = c.benchmark_group("k233_scalar_mul");
    g.sample_size(20);
    g.bench_function("ladder_x_only", |b| {
        b.iter(|| black_box(ladder::scalar_mul_x(&k, &g_pt.x())))
    });
    g.bench_function("ladder_full_point", |b| {
        b.iter(|| black_box(ladder::scalar_mul(&k, &g_pt)))
    });
    g.bench_function("double_and_add_oracle", |b| {
        b.iter(|| black_box(g_pt.scalar_mul(&k)))
    });
    g.finish();
}

fn bench_ecies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let kp = EciesKeyPair::generate(&mut rng);
    let msg = vec![0xA5u8; 32];
    let ct = encrypt(&kp.public(), &msg, &mut rng).unwrap();
    let mut g = c.benchmark_group("ecies_k233");
    g.sample_size(20);
    g.bench_function("encrypt_32B", |b| {
        b.iter(|| black_box(encrypt(&kp.public(), &msg, &mut rng).unwrap()))
    });
    g.bench_function("decrypt_32B", |b| {
        b.iter(|| black_box(decrypt(&kp, &ct).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_field, bench_ladder, bench_ecies);
criterion_main!(benches);

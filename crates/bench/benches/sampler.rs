//! Wall-clock benches of the sampler optimisation ladder (host CPU):
//! the paper's basic → Hamming-weight → clz → LUT1 → LUT1+LUT2 chain,
//! plus the CDT and rejection baselines and the constant-time CDT rung
//! (quantifying the speed cost of the fixed operation count).

use criterion::{criterion_group, criterion_main, Criterion};
use rlwe_sampler::cdt::CdtSampler;
use rlwe_sampler::ct::CtCdtSampler;
use rlwe_sampler::random::{BufferedBitSource, SplitMix64};
use rlwe_sampler::rejection::RejectionSampler;
use rlwe_sampler::{KnuthYao, ProbabilityMatrix};
use std::hint::black_box;

fn bench_knuth_yao_ladder(c: &mut Criterion) {
    let pmat = ProbabilityMatrix::paper_p1().unwrap();
    let ky = KnuthYao::new(pmat.clone()).unwrap();
    let mut g = c.benchmark_group("knuth_yao_p1");
    let mut bits = BufferedBitSource::new(SplitMix64::new(1));
    g.bench_function("basic", |b| {
        b.iter(|| black_box(ky.sample_basic(&mut bits)))
    });
    g.bench_function("hamming_weight", |b| {
        b.iter(|| black_box(ky.sample_hw(&mut bits)))
    });
    g.bench_function("clz", |b| b.iter(|| black_box(ky.sample_clz(&mut bits))));
    g.bench_function("lut1", |b| b.iter(|| black_box(ky.sample_lut1(&mut bits))));
    g.bench_function("lut1_lut2", |b| {
        b.iter(|| black_box(ky.sample_lut(&mut bits)))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let pmat = ProbabilityMatrix::paper_p1().unwrap();
    let cdt = CdtSampler::new(&pmat);
    let rej = RejectionSampler::new(&pmat);
    let mut g = c.benchmark_group("baseline_samplers_p1");
    let mut bits = BufferedBitSource::new(SplitMix64::new(2));
    g.bench_function("cdt_inversion", |b| {
        b.iter(|| black_box(cdt.sample(&mut bits)))
    });
    g.bench_function("rejection", |b| b.iter(|| black_box(rej.sample(&mut bits))));
    // The constant-time rung: always 129 bits and a full-table scan —
    // the price of leakage freedom, to be read against lut1_lut2 above.
    let ct = CtCdtSampler::new(&pmat);
    g.bench_function("ct_cdt", |b| b.iter(|| black_box(ct.sample(&mut bits))));
    g.finish();
}

fn bench_poly_sampling(c: &mut Criterion) {
    let pmat = ProbabilityMatrix::paper_p1().unwrap();
    let ky = KnuthYao::new(pmat).unwrap();
    let mut g = c.benchmark_group("error_polynomial");
    let mut bits = BufferedBitSource::new(SplitMix64::new(3));
    g.bench_function("n256_lut", |b| {
        b.iter(|| black_box(ky.sample_poly_zq(256, 7681, &mut bits)))
    });
    let pmat2 = ProbabilityMatrix::paper_p2().unwrap();
    let ky2 = KnuthYao::new(pmat2).unwrap();
    g.bench_function("n512_lut", |b| {
        b.iter(|| black_box(ky2.sample_poly_zq(512, 12289, &mut bits)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_knuth_yao_ladder,
    bench_baselines,
    bench_poly_sampling
);
criterion_main!(benches);
